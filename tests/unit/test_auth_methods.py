"""Unit tests for the four authentication methods (over real sockets)."""

import pytest

from repro.auth.methods import (
    AuthContext,
    AuthFailed,
    ClientCredentials,
    GlobusCredential,
    SimulatedCA,
    SimulatedKDC,
    authenticate_client,
    authenticate_server,
)
from repro.util.wire import LineStream

from tests.conftest import run_in_thread


def handshake(socket_pair, ctx: AuthContext, creds: ClientCredentials):
    """Run both ends of the handshake; returns (client_subject, server_subject)."""
    client_sock, server_sock = socket_pair
    server_stream = LineStream(server_sock)
    client_stream = LineStream(client_sock)
    server = run_in_thread(authenticate_server, server_stream, ctx, "127.0.0.1")
    client_subject = authenticate_client(client_stream, creds)
    server_subject = server.result()
    return client_subject, server_subject


def failing_handshake(socket_pair, ctx, creds):
    client_sock, server_sock = socket_pair
    server_stream = LineStream(server_sock)
    client_stream = LineStream(client_sock)
    server = run_in_thread(authenticate_server, server_stream, ctx, "127.0.0.1")
    with pytest.raises(AuthFailed):
        authenticate_client(client_stream, creds)
    with pytest.raises(AuthFailed):
        server.result()


class TestHostname:
    def test_loopback_resolves_to_localhost(self, socket_pair):
        ctx = AuthContext(enabled=("hostname",))
        creds = ClientCredentials(methods=("hostname",))
        c, s = handshake(socket_pair, ctx, creds)
        assert c == s == "hostname:localhost"

    def test_custom_resolver(self, socket_pair):
        ctx = AuthContext(
            enabled=("hostname",),
            hostname_resolver=lambda addr: "node5.cse.nd.edu",
        )
        creds = ClientCredentials(methods=("hostname",))
        c, _ = handshake(socket_pair, ctx, creds)
        assert c == "hostname:node5.cse.nd.edu"

    def test_resolver_refusal_fails(self, socket_pair):
        ctx = AuthContext(enabled=("hostname",), hostname_resolver=lambda addr: None)
        creds = ClientCredentials(methods=("hostname",))
        failing_handshake(socket_pair, ctx, creds)


class TestUnix:
    def test_challenge_response(self, socket_pair, tmp_path):
        import getpass

        ctx = AuthContext(enabled=("unix",), unix_challenge_dir=str(tmp_path))
        creds = ClientCredentials(methods=("unix",))
        c, s = handshake(socket_pair, ctx, creds)
        assert c == s == f"unix:{getpass.getuser()}"

    def test_challenge_file_is_cleaned_up(self, socket_pair, tmp_path):
        import os

        ctx = AuthContext(enabled=("unix",), unix_challenge_dir=str(tmp_path))
        creds = ClientCredentials(methods=("unix",))
        handshake(socket_pair, ctx, creds)
        assert os.listdir(str(tmp_path)) == []

    def test_unwritable_challenge_dir_fails(self, socket_pair, tmp_path):
        missing = str(tmp_path / "does-not-exist")
        ctx = AuthContext(enabled=("unix",), unix_challenge_dir=missing)
        creds = ClientCredentials(methods=("unix",))
        failing_handshake(socket_pair, ctx, creds)


class TestGlobus:
    def test_trusted_ca_succeeds(self, socket_pair):
        ca = SimulatedCA("NotreDame")
        cred = ca.issue("/O=NotreDame/CN=alice")
        ctx = AuthContext(enabled=("globus",), trusted_cas={"NotreDame": ca.secret})
        creds = ClientCredentials(methods=("globus",), globus=cred)
        c, s = handshake(socket_pair, ctx, creds)
        assert c == s == "globus:/O=NotreDame/CN=alice"

    def test_unknown_ca_fails(self, socket_pair):
        rogue = SimulatedCA("Rogue")
        cred = rogue.issue("/O=Rogue/CN=mallory")
        ctx = AuthContext(enabled=("globus",), trusted_cas={})
        creds = ClientCredentials(methods=("globus",), globus=cred)
        failing_handshake(socket_pair, ctx, creds)

    def test_forged_signature_fails(self, socket_pair):
        ca = SimulatedCA("ND")
        good = ca.issue("/O=ND/CN=alice")
        forged = GlobusCredential(
            dn="/O=ND/CN=root", ca_name="ND", signature=good.signature, key=good.key
        )
        ctx = AuthContext(enabled=("globus",), trusted_cas={"ND": ca.secret})
        creds = ClientCredentials(methods=("globus",), globus=forged)
        failing_handshake(socket_pair, ctx, creds)

    def test_stolen_cert_without_key_fails(self, socket_pair):
        ca = SimulatedCA("ND")
        good = ca.issue("/O=ND/CN=alice")
        stolen = GlobusCredential(
            dn=good.dn, ca_name=good.ca_name, signature=good.signature, key="wrong"
        )
        ctx = AuthContext(enabled=("globus",), trusted_cas={"ND": ca.secret})
        creds = ClientCredentials(methods=("globus",), globus=stolen)
        failing_handshake(socket_pair, ctx, creds)

    def test_missing_credential_fails_cleanly(self, socket_pair):
        ctx = AuthContext(enabled=("globus",), trusted_cas={})
        creds = ClientCredentials(methods=("globus",), globus=None)
        failing_handshake(socket_pair, ctx, creds)


class TestKerberos:
    def _setup(self):
        kdc = SimulatedKDC("ND.EDU")
        kdc.add_principal("alice", "hunter2")
        service_key = kdc.register_service("chirp/storage01")
        return kdc, service_key

    def test_valid_ticket_succeeds(self, socket_pair):
        kdc, key = self._setup()
        ticket = kdc.issue_ticket("alice", "hunter2", "chirp/storage01")
        ctx = AuthContext(enabled=("kerberos",), kerberos_service_key=key)
        creds = ClientCredentials(methods=("kerberos",), kerberos=ticket)
        c, s = handshake(socket_pair, ctx, creds)
        assert c == s == "kerberos:alice@ND.EDU"

    def test_bad_password_rejected_at_kdc(self):
        kdc, _ = self._setup()
        with pytest.raises(PermissionError):
            kdc.issue_ticket("alice", "wrong", "chirp/storage01")

    def test_unknown_service_rejected_at_kdc(self):
        kdc, _ = self._setup()
        with pytest.raises(KeyError):
            kdc.issue_ticket("alice", "hunter2", "chirp/elsewhere")

    def test_expired_ticket_fails(self, socket_pair):
        kdc, key = self._setup()
        ticket = kdc.issue_ticket(
            "alice", "hunter2", "chirp/storage01", lifetime=-10.0
        )
        ctx = AuthContext(enabled=("kerberos",), kerberos_service_key=key)
        creds = ClientCredentials(methods=("kerberos",), kerberos=ticket)
        failing_handshake(socket_pair, ctx, creds)

    def test_ticket_for_other_service_fails(self, socket_pair):
        kdc, _ = self._setup()
        other_key = kdc.register_service("chirp/other")
        ticket = kdc.issue_ticket("alice", "hunter2", "chirp/storage01")
        ctx = AuthContext(enabled=("kerberos",), kerberos_service_key=other_key)
        creds = ClientCredentials(methods=("kerberos",), kerberos=ticket)
        failing_handshake(socket_pair, ctx, creds)

    def test_tampered_ticket_fails(self, socket_pair):
        kdc, key = self._setup()
        ticket = kdc.issue_ticket("alice", "hunter2", "chirp/storage01")
        from repro.auth.methods import KerberosTicket

        tampered = KerberosTicket(
            blob=ticket.blob[:-4] + "0000",
            session_key=ticket.session_key,
            principal=ticket.principal,
            expires=ticket.expires,
        )
        ctx = AuthContext(enabled=("kerberos",), kerberos_service_key=key)
        creds = ClientCredentials(methods=("kerberos",), kerberos=tampered)
        failing_handshake(socket_pair, ctx, creds)


class TestMethodNegotiation:
    def test_client_falls_through_refused_methods(self, socket_pair, tmp_path):
        ctx = AuthContext(enabled=("unix",), unix_challenge_dir=str(tmp_path))
        creds = ClientCredentials(methods=("kerberos", "globus", "unix"))
        c, _ = handshake(socket_pair, ctx, creds)
        assert c.startswith("unix:")

    def test_client_falls_through_failed_method(self, socket_pair, tmp_path):
        # globus is enabled but the client has no credential; unix saves it.
        ctx = AuthContext(
            enabled=("globus", "unix"),
            trusted_cas={},
            unix_challenge_dir=str(tmp_path),
        )
        creds = ClientCredentials(methods=("globus", "unix"))
        c, _ = handshake(socket_pair, ctx, creds)
        assert c.startswith("unix:")

    def test_all_methods_exhausted(self, socket_pair):
        ctx = AuthContext(enabled=())
        creds = ClientCredentials(methods=("unix", "hostname"))
        failing_handshake(socket_pair, ctx, creds)

    def test_first_success_wins(self, socket_pair, tmp_path):
        ctx = AuthContext(enabled=("hostname", "unix"), unix_challenge_dir=str(tmp_path))
        creds = ClientCredentials(methods=("hostname", "unix"))
        c, _ = handshake(socket_pair, ctx, creds)
        assert c == "hostname:localhost"
