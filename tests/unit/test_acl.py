"""Unit tests for ACLs: rights parsing, the union rule, the reserve right."""

import pytest

from repro.auth.acl import (
    Acl,
    AclEntry,
    Rights,
    format_rights,
    load_acl,
    parse_rights,
    store_acl,
)


class TestRightsParsing:
    @pytest.mark.parametrize("text", ["r", "rwl", "rwld", "rwlda", "d"])
    def test_simple_rights(self, text):
        rights = parse_rights(text)
        assert rights.flags == frozenset(text)

    def test_reserve_with_group(self):
        rights = parse_rights("v(rwla)")
        assert "v" in rights.flags
        assert rights.reserve == frozenset("rwla")

    def test_mixed_rights_and_reserve(self):
        rights = parse_rights("rlv(rwl)")
        assert rights.flags == frozenset("rlv")
        assert rights.reserve == frozenset("rwl")

    def test_empty_reserve_group(self):
        rights = parse_rights("v()")
        assert "v" in rights.flags
        assert rights.reserve == frozenset()

    def test_unclosed_group_rejected(self):
        with pytest.raises(ValueError):
            parse_rights("v(rwl")

    def test_nested_v_in_group_rejected(self):
        with pytest.raises(ValueError):
            parse_rights("v(rv)")

    def test_unknown_letter_rejected(self):
        with pytest.raises(ValueError):
            parse_rights("rqx")

    def test_aliases(self):
        assert parse_rights("read").flags == frozenset("r")
        assert parse_rights("full").flags == frozenset("rwldav")
        assert parse_rights("none").flags == frozenset()

    def test_format_roundtrip(self):
        for text in ["r", "rwl", "rwlda", "v(rwla)", "rwv(rl)", "rwldav(rwlda)"]:
            rights = parse_rights(text)
            assert parse_rights(format_rights(rights)) == rights

    def test_format_canonical_order(self):
        assert format_rights(parse_rights("lwr")) == "rwl"

    def test_no_rights_formats_as_n(self):
        assert format_rights(Rights()) == "n"


class TestRightsObject:
    def test_union(self):
        a = parse_rights("rl")
        b = parse_rights("wv(d)")
        u = a.union(b)
        assert u.flags == frozenset("rlwv")
        assert u.reserve == frozenset("d")

    def test_reserve_without_v_rejected(self):
        with pytest.raises(ValueError):
            Rights(frozenset("r"), frozenset("w"))

    def test_bool(self):
        assert parse_rights("r")
        assert not Rights()


class TestAclEntry:
    def test_line_roundtrip(self):
        entry = AclEntry("hostname:*.cse.nd.edu", parse_rights("rwl"))
        assert AclEntry.from_line(entry.to_line()) == entry

    def test_paper_example_lines(self):
        # The exact ACL printed in section 4 of the paper.
        acl = Acl.from_text(
            "hostname:*.cse.nd.edu v(rwl)\n" "globus:/O=Notre_Dame/* v(rwla)\n"
        )
        assert len(acl) == 2
        assert acl.reserve_rights_for("hostname:pc.cse.nd.edu") == frozenset("rwl")
        assert acl.reserve_rights_for("globus:/O=Notre_Dame/CN=x") == frozenset("rwla")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            AclEntry.from_line("too many parts here")

    def test_pattern_without_method_rejected(self):
        with pytest.raises(ValueError):
            AclEntry.from_line("justaname rwl")


class TestAclSemantics:
    def test_union_across_matching_entries(self):
        acl = Acl.from_text("unix:alice rl\nunix:* w\n")
        rights = acl.rights_for("unix:alice")
        assert rights.flags == frozenset("rlw")

    def test_non_matching_subject_gets_nothing(self):
        acl = Acl.from_text("unix:alice rwl\n")
        assert not acl.rights_for("unix:bob")

    def test_check(self):
        acl = Acl.from_text("unix:alice rwl\n")
        assert acl.check("unix:alice", "r")
        assert not acl.check("unix:alice", "a")

    def test_check_unknown_right_rejected(self):
        acl = Acl()
        with pytest.raises(ValueError):
            acl.check("unix:alice", "z")

    def test_owner_default_has_everything(self):
        acl = Acl.owner_default("unix:owner")
        rights = acl.rights_for("unix:owner")
        assert rights.flags == frozenset("rwldav")
        assert rights.reserve == frozenset("rwlda")

    def test_set_entry_replaces(self):
        acl = Acl.from_text("unix:alice rwl\n")
        acl.set_entry("unix:alice", "r")
        assert acl.rights_for("unix:alice").flags == frozenset("r")
        assert len(acl) == 1

    def test_set_entry_empty_removes(self):
        acl = Acl.from_text("unix:alice rwl\n")
        acl.set_entry("unix:alice", "")
        assert len(acl) == 0

    def test_comments_and_blanks_ignored(self):
        acl = Acl.from_text("# comment\n\nunix:alice r\n")
        assert len(acl) == 1


class TestReserveSemantics:
    def test_reserved_for_grants_only_the_group(self):
        """The paper's worked example: mkdir under v(rwl) yields an ACL
        granting the caller rwl -- and critically not 'a', so the visitor
        cannot extend access to others."""
        parent = Acl.from_text("hostname:*.cse.nd.edu v(rwl)\n")
        child = parent.reserved_for("hostname:laptop.cse.nd.edu")
        assert len(child) == 1
        rights = child.rights_for("hostname:laptop.cse.nd.edu")
        assert rights.flags == frozenset("rwl")
        assert not child.check("hostname:laptop.cse.nd.edu", "a")
        assert not child.check("hostname:other.cse.nd.edu", "r")

    def test_reserved_for_with_admin_group(self):
        parent = Acl.from_text("globus:/O=ND/* v(rwla)\n")
        child = parent.reserved_for("globus:/O=ND/CN=alice")
        assert child.check("globus:/O=ND/CN=alice", "a")

    def test_reserved_for_unmatched_subject_is_empty(self):
        parent = Acl.from_text("unix:alice v(rwl)\n")
        assert len(parent.reserved_for("unix:bob")) == 0


class TestAclStorage:
    def test_store_and_load(self, tmp_path):
        acl = Acl.from_text("unix:alice rwl\nunix:bob rv(rl)\n")
        store_acl(str(tmp_path), acl)
        loaded = load_acl(str(tmp_path))
        assert loaded is not None
        assert loaded.to_text() == acl.to_text()

    def test_load_missing_returns_none(self, tmp_path):
        assert load_acl(str(tmp_path)) is None

    def test_store_is_atomic_replace(self, tmp_path):
        store_acl(str(tmp_path), Acl.from_text("unix:a r\n"))
        store_acl(str(tmp_path), Acl.from_text("unix:b w\n"))
        loaded = load_acl(str(tmp_path))
        assert loaded.rights_for("unix:b").flags == frozenset("w")
        assert not loaded.rights_for("unix:a")
