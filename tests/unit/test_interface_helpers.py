"""Unit tests for the Filesystem bulk helpers and stat adaptation."""

import os
import stat as stat_mod

import pytest

from repro.chirp.protocol import ChirpStat
from repro.core.interface import StatResult, to_stat_result
from repro.core.localfs import LocalFilesystem
from repro.util import errors as E


@pytest.fixture()
def fs(tmp_path):
    return LocalFilesystem(str(tmp_path))


class TestBulkHelpers:
    def test_read_write_file_roundtrip(self, fs):
        blob = bytes(range(256)) * 100
        assert fs.write_file("/f.bin", blob) == len(blob)
        assert fs.read_file("/f.bin") == blob

    def test_write_file_truncates_previous(self, fs):
        fs.write_file("/f", b"a much longer earlier version")
        fs.write_file("/f", b"short")
        assert fs.read_file("/f") == b"short"

    def test_empty_file(self, fs):
        fs.write_file("/empty", b"")
        assert fs.read_file("/empty") == b""
        assert fs.stat("/empty").size == 0

    def test_makedirs_creates_chain(self, fs):
        fs.makedirs("/a/b/c/d")
        assert fs.stat("/a/b/c/d").is_dir

    def test_makedirs_tolerates_existing(self, fs):
        fs.makedirs("/a/b")
        fs.makedirs("/a/b/c")  # /a and /a/b already exist
        assert fs.stat("/a/b/c").is_dir

    def test_exists(self, fs):
        assert not fs.exists("/nope")
        fs.write_file("/yes", b"1")
        assert fs.exists("/yes")

    def test_walk_structure(self, fs):
        fs.makedirs("/a/b")
        fs.write_file("/top.txt", b"1")
        fs.write_file("/a/mid.txt", b"2")
        fs.write_file("/a/b/leaf.txt", b"3")
        seen = {d: (set(dirs), set(files)) for d, dirs, files in fs.walk("/")}
        assert seen["/"] == ({"a"}, {"top.txt"})
        assert seen["/a"] == ({"b"}, {"mid.txt"})
        assert seen["/a/b"] == (set(), {"leaf.txt"})

    def test_read_missing_raises_chirp_error(self, fs):
        with pytest.raises(E.ChirpError):
            fs.read_file("/missing")


class TestStatAdaptation:
    def test_field_mapping(self):
        st = ChirpStat(
            device=1, inode=2, mode=0o100644, nlink=1, uid=3, gid=4,
            size=500, atime=10, mtime=20, ctime=30,
        )
        result = to_stat_result(st)
        assert isinstance(result, StatResult)
        assert result.st_ino == 2
        assert result.st_size == 500
        assert result.st_mtime == 20
        assert stat_mod.S_ISREG(result.st_mode)

    def test_usable_by_stat_module_helpers(self, fs, tmp_path):
        fs.mkdir("/d")
        result = to_stat_result(fs.stat("/d"))
        assert stat_mod.S_ISDIR(result.st_mode)
        assert stat_mod.S_IMODE(result.st_mode) == stat_mod.S_IMODE(
            os.stat(str(tmp_path / "d")).st_mode
        )

    def test_tuple_order_matches_os_stat_result(self, fs):
        fs.write_file("/f", b"xyz")
        ours = to_stat_result(fs.stat("/f"))
        # os.stat_result's first 10 fields in order
        keys = (
            "st_mode", "st_ino", "st_dev", "st_nlink", "st_uid",
            "st_gid", "st_size", "st_atime", "st_mtime", "st_ctime",
        )
        for i, key in enumerate(keys):
            assert ours[i] == getattr(ours, key)
