"""Unit tests for the Chirp protocol vocabulary."""

import os
import stat as stat_mod

import pytest

from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.util.errors import InvalidRequestError


class TestOpenFlags:
    def test_encode_decode_roundtrip(self):
        flags = OpenFlags(read=True, write=True, create=True, sync=True)
        assert OpenFlags.decode(flags.encode()) == flags

    def test_all_letters(self):
        flags = OpenFlags.decode("rwcxtas")
        assert flags == OpenFlags(True, True, True, True, True, True, True)

    def test_unknown_letter_rejected(self):
        with pytest.raises(InvalidRequestError):
            OpenFlags.decode("rz")

    def test_neither_read_nor_write_rejected(self):
        with pytest.raises(InvalidRequestError):
            OpenFlags.decode("c")

    def test_os_flags_read_write(self):
        assert OpenFlags(read=True).to_os_flags() & os.O_ACCMODE == os.O_RDONLY
        assert OpenFlags(write=True).to_os_flags() & os.O_ACCMODE == os.O_WRONLY
        both = OpenFlags(read=True, write=True).to_os_flags()
        assert both & os.O_ACCMODE == os.O_RDWR

    def test_os_flags_modifiers(self):
        flags = OpenFlags(write=True, create=True, exclusive=True, truncate=True)
        os_flags = flags.to_os_flags()
        assert os_flags & os.O_CREAT
        assert os_flags & os.O_EXCL
        assert os_flags & os.O_TRUNC

    def test_sync_flag_maps_to_o_sync(self):
        flags = OpenFlags(write=True, sync=True)
        assert flags.to_os_flags() & os.O_SYNC

    @pytest.mark.parametrize(
        "mode,expect",
        [
            ("r", OpenFlags(read=True)),
            ("rb", OpenFlags(read=True)),
            ("w", OpenFlags(write=True, create=True, truncate=True)),
            ("a", OpenFlags(write=True, create=True, append=True)),
            ("x", OpenFlags(write=True, create=True, exclusive=True)),
            ("r+", OpenFlags(read=True, write=True)),
            ("w+b", OpenFlags(read=True, write=True, create=True, truncate=True)),
        ],
    )
    def test_mode_string_parsing(self, mode, expect):
        assert OpenFlags.parse_mode_string(mode) == expect

    def test_bad_mode_string_rejected(self):
        with pytest.raises(ValueError):
            OpenFlags.parse_mode_string("rw")


class TestChirpStat:
    def test_from_os_and_token_roundtrip(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"hello")
        st = ChirpStat.from_os(os.stat(str(p)))
        tokens = [str(t) for t in st.to_tokens()]
        assert ChirpStat.from_tokens(tokens) == st
        assert st.size == 5
        assert st.is_file and not st.is_dir

    def test_directory_flags(self, tmp_path):
        st = ChirpStat.from_os(os.stat(str(tmp_path)))
        assert st.is_dir and not st.is_file

    def test_symlink_flag_via_lstat(self, tmp_path):
        target = tmp_path / "t"
        target.write_text("x")
        link = tmp_path / "l"
        os.symlink(str(target), str(link))
        st = ChirpStat.from_os(os.lstat(str(link)))
        assert st.is_symlink

    def test_wrong_token_count_rejected(self):
        with pytest.raises(InvalidRequestError):
            ChirpStat.from_tokens(["1", "2", "3"])

    def test_mode_bits_survive(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"")
        os.chmod(str(p), 0o640)
        st = ChirpStat.from_os(os.stat(str(p)))
        assert stat_mod.S_IMODE(st.mode) == 0o640


class TestStatFs:
    def test_token_roundtrip(self):
        fs = StatFs(10_000_000, 4_000_000)
        assert StatFs.from_tokens([str(t) for t in fs.to_tokens()]) == fs

    def test_wrong_token_count_rejected(self):
        with pytest.raises(InvalidRequestError):
            StatFs.from_tokens(["1"])
