"""Unit tests for BUSY refusal plumbing: hint encoding, BusyError, and
the RetryPolicy's server-driven backoff path.

Everything runs on a :class:`ManualClock`; the invariants under test
are the lifecycle contract's client half: a BUSY refusal is retried
after the server's ``retry_after_ms`` hint, ``recover()`` is never
called for it (the connection is healthy), and exhaustion surfaces the
refusal itself rather than a transport error.
"""

from __future__ import annotations

import pytest

from repro.transport.recovery import Deadline, RetryPolicy
from repro.util.clock import ManualClock
from repro.util.errors import (
    BusyError,
    DisconnectedError,
    TimedOutError,
    busy_message,
    parse_retry_after,
)


class TestBusyMessageRoundTrip:
    def test_hint_round_trips(self):
        assert parse_retry_after(busy_message(250)) == 0.25
        assert parse_retry_after(busy_message(0)) == 0.0
        assert parse_retry_after(busy_message(1500, "draining")) == 1.5

    def test_reason_is_preserved(self):
        msg = busy_message(40, "server at max-conns")
        assert msg.startswith("server at max-conns ")
        assert parse_retry_after(msg) == 0.04

    def test_negative_hint_clamped(self):
        assert parse_retry_after(busy_message(-5)) == 0.0

    def test_absent_hint_is_none(self):
        assert parse_retry_after("just busy") is None
        assert parse_retry_after("") is None
        assert parse_retry_after("retry_after_ms=notanint") is None


class TestBusyError:
    def test_parses_hint_from_message(self):
        exc = BusyError(busy_message(300, "draining"))
        assert exc.retry_after_s == 0.3

    def test_explicit_hint_wins(self):
        exc = BusyError("whatever", retry_after_s=1.25)
        assert exc.retry_after_s == 1.25

    def test_no_hint(self):
        assert BusyError("host EBUSY").retry_after_s is None


class _Flaky:
    """An operation that fails a scripted number of times, then succeeds."""

    def __init__(self, failures):
        self.failures = list(failures)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return "done"


class TestRetryPolicyBusyPath:
    def _policy(self, **kwargs):
        clock = ManualClock()
        kwargs.setdefault("max_attempts", 4)
        kwargs.setdefault("initial_delay", 1.0)
        kwargs.setdefault("multiplier", 2.0)
        return RetryPolicy(clock=clock, **kwargs), clock

    def test_busy_sleeps_the_hint_and_skips_recover(self):
        policy, clock = self._policy()
        op = _Flaky([BusyError(busy_message(100)), BusyError(busy_message(100))])
        recoveries = []
        result = policy.run(op, lambda: recoveries.append(1))
        assert result == "done"
        assert op.calls == 3
        assert recoveries == []  # the connection was healthy throughout
        # Two sleeps of the 0.1 s hint, not the 1 s/2 s schedule.
        assert clock.now() == pytest.approx(0.2)

    def test_busy_without_hint_uses_policy_schedule(self):
        policy, clock = self._policy()
        op = _Flaky([BusyError("busy"), BusyError("busy")])
        assert policy.run(op, lambda: None) == "done"
        assert clock.now() == pytest.approx(1.0 + 2.0)

    def test_hint_capped_at_max_delay(self):
        policy, clock = self._policy(max_delay=0.5)
        op = _Flaky([BusyError(busy_message(60_000))])
        assert policy.run(op, lambda: None) == "done"
        assert clock.now() == pytest.approx(0.5)

    def test_exhaustion_raises_the_refusal(self):
        policy, clock = self._policy(max_attempts=3)
        op = _Flaky([BusyError(busy_message(50)) for _ in range(10)])
        with pytest.raises(BusyError):
            policy.run(op, lambda: None)
        assert op.calls == 3  # max_attempts includes the first try

    def test_deadline_clamps_busy_backoff(self):
        policy, clock = self._policy()
        op = _Flaky([BusyError(busy_message(10_000)) for _ in range(10)])
        deadline = Deadline(0.0, clock=clock)
        with pytest.raises(TimedOutError):
            policy.run(op, lambda: None, deadline=deadline)

    def test_disconnect_still_recovers(self):
        # The BUSY path must not have broken the classic disconnect path.
        policy, clock = self._policy()
        op = _Flaky([DisconnectedError("gone")])
        recoveries = []
        assert policy.run(op, lambda: recoveries.append(1)) == "done"
        assert recoveries == [1]
