"""Unit tests for GEMS replication planning."""

import pytest

from repro.gems.policy import (
    BudgetGreedyPolicy,
    FixedCountPolicy,
    RecordSummary,
    plan_drops,
)


def summaries(*specs):
    """specs: (id, size, live)"""
    return [RecordSummary(rid, size, live) for rid, size, live in specs]


class TestBudgetGreedy:
    def test_replicates_up_to_budget(self):
        policy = BudgetGreedyPolicy(300)
        s = summaries(("a", 100, 1), ("b", 100, 1))
        plan = policy.plan_additions(s, max_servers=10)
        # 200 stored, budget 300 -> exactly one more copy fits
        assert len(plan) == 1

    def test_budget_exactly_filled(self):
        policy = BudgetGreedyPolicy(400)
        s = summaries(("a", 100, 1), ("b", 100, 1))
        plan = policy.plan_additions(s, max_servers=10)
        assert len(plan) == 2

    def test_never_exceeds_budget(self):
        policy = BudgetGreedyPolicy(1000)
        s = summaries(*[(f"r{i}", 130, 1) for i in range(5)])
        plan = policy.plan_additions(s, max_servers=10)
        stored = 5 * 130 + len(plan) * 130
        assert stored <= 1000

    def test_least_replicated_first(self):
        policy = BudgetGreedyPolicy(10_000)
        s = summaries(("lonely", 100, 1), ("cozy", 100, 3))
        plan = policy.plan_additions(s, max_servers=4)
        assert plan[0] == "lonely"

    def test_balanced_sweeps(self):
        """One copy per record per sweep: no record hogs the budget."""
        policy = BudgetGreedyPolicy(100 * 6)
        s = summaries(("a", 100, 1), ("b", 100, 1))
        plan = policy.plan_additions(s, max_servers=10)
        # budget allows 4 additions; they must alternate a,b,a,b not a,a,a,b
        assert plan[:2] in (["a", "b"], ["b", "a"])
        assert sorted(plan) == ["a", "a", "b", "b"]

    def test_dead_records_never_planned(self):
        policy = BudgetGreedyPolicy(10_000)
        s = summaries(("dead", 100, 0), ("alive", 100, 1))
        plan = policy.plan_additions(s, max_servers=10)
        assert "dead" not in plan

    def test_max_servers_caps_copies(self):
        policy = BudgetGreedyPolicy(10**9)
        s = summaries(("a", 100, 1))
        plan = policy.plan_additions(s, max_servers=3)
        assert len(plan) == 2  # 1 existing + 2 more = 3 = server count

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            BudgetGreedyPolicy(0)

    def test_empty_input(self):
        assert BudgetGreedyPolicy(100).plan_additions([], 5) == []

    def test_big_files_not_starved_within_copy_count(self):
        policy = BudgetGreedyPolicy(10_000)
        s = summaries(("small", 10, 1), ("big", 1000, 1))
        plan = policy.plan_additions(s, max_servers=2)
        assert plan[0] == "big"  # same copy count: bigger first


class TestFixedCount:
    def test_targets_exact_copies(self):
        policy = FixedCountPolicy(3)
        s = summaries(("a", 100, 1), ("b", 100, 2), ("c", 100, 3))
        plan = policy.plan_additions(s, max_servers=10)
        assert plan.count("a") == 2
        assert plan.count("b") == 1
        assert plan.count("c") == 0

    def test_ignores_budget_entirely(self):
        policy = FixedCountPolicy(5)
        s = summaries(*[(f"r{i}", 10**9, 1) for i in range(10)])
        plan = policy.plan_additions(s, max_servers=10)
        assert len(plan) == 40  # would blow any budget: the ablation point

    def test_capped_by_server_count(self):
        policy = FixedCountPolicy(5)
        s = summaries(("a", 1, 1))
        assert len(policy.plan_additions(s, max_servers=3)) == 2

    def test_dead_records_skipped(self):
        policy = FixedCountPolicy(2)
        s = summaries(("dead", 1, 0))
        assert policy.plan_additions(s, 5) == []

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            FixedCountPolicy(0)


class TestPlanDrops:
    def test_only_bad_replicas_dropped(self):
        record = {
            "replicas": [
                {"host": "a", "port": 1, "path": "/x", "state": "ok"},
                {"host": "b", "port": 1, "path": "/y", "state": "missing"},
                {"host": "c", "port": 1, "path": "/z", "state": "damaged"},
            ]
        }
        drops = plan_drops(record)
        assert {d["host"] for d in drops} == {"b", "c"}

    def test_default_state_is_ok(self):
        record = {"replicas": [{"host": "a", "port": 1, "path": "/x"}]}
        assert plan_drops(record) == []


class TestRecordSummary:
    def test_from_record_counts_live_only(self):
        record = {
            "id": "r1",
            "size": 500,
            "replicas": [
                {"host": "a", "port": 1, "path": "/x", "state": "ok"},
                {"host": "b", "port": 1, "path": "/y", "state": "missing"},
            ],
        }
        s = RecordSummary.from_record(record)
        assert s == RecordSummary("r1", 500, 1)
