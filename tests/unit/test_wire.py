"""Unit tests for the wire codec and LineStream."""

import io

import pytest

from repro.util.errors import DisconnectedError, InvalidRequestError
from repro.util.wire import (
    LineStream,
    decode_token,
    encode_token,
    pack_line,
    unpack_line,
)


class TestTokenCodec:
    def test_plain_token_unchanged(self):
        assert encode_token("hello.txt") == "hello.txt"

    def test_space_is_escaped(self):
        assert encode_token("a b") == "a%20b"
        assert decode_token("a%20b") == "a b"

    def test_newline_is_escaped(self):
        wire = encode_token("a\nb")
        assert "\n" not in wire
        assert decode_token(wire) == "a\nb"

    def test_empty_token_has_representation(self):
        wire = encode_token("")
        assert wire == "%"
        assert decode_token(wire) == ""

    def test_unicode_roundtrip(self):
        for text in ("héllo", "日本語", "a\tb", "100%"):
            assert decode_token(encode_token(text)) == text

    def test_percent_itself_roundtrips(self):
        assert decode_token(encode_token("%")) == "%"

    def test_truncated_escape_rejected(self):
        with pytest.raises(InvalidRequestError):
            decode_token("abc%2")

    def test_bad_hex_rejected(self):
        with pytest.raises(InvalidRequestError):
            decode_token("abc%zz")

    def test_slash_and_colon_pass_through(self):
        # paths and subjects dominate the protocol; keep them readable
        assert encode_token("/a/b:9094") == "/a/b:9094"


class TestLineCodec:
    def test_pack_mixed_tokens(self):
        line = pack_line("open", "/a b", 42, 0o644)
        assert line.endswith(b"\n")
        assert unpack_line(line) == ["open", "/a b", "42", "420"]

    def test_bool_packs_as_digit(self):
        assert unpack_line(pack_line(True, False)) == ["1", "0"]

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            pack_line(object())

    def test_empty_line_unpacks_empty(self):
        assert unpack_line(b"\n") == []

    def test_crlf_tolerated(self):
        assert unpack_line(b"stat /x\r\n") == ["stat", "/x"]


class FakeSocket:
    """Just enough socket for LineStream: scripted recv, captured sends."""

    def __init__(self, chunks):
        self.chunks = list(chunks)
        self.sent = bytearray()
        self.closed = False

    def recv(self, n):
        if not self.chunks:
            return b""
        chunk = self.chunks.pop(0)
        return chunk[:n] if len(chunk) <= n else self._split(chunk, n)

    def _split(self, chunk, n):
        head, tail = chunk[:n], chunk[n:]
        self.chunks.insert(0, tail)
        return head

    def sendall(self, data):
        self.sent.extend(data)

    def close(self):
        self.closed = True


class TestLineStream:
    def test_read_line_across_chunks(self):
        stream = LineStream(FakeSocket([b"he", b"llo wor", b"ld\nrest"]))
        assert stream.read_line() == b"hello world\n"

    def test_read_tokens(self):
        stream = LineStream(FakeSocket([b"open /x rwc 420\n"]))
        assert stream.read_tokens() == ["open", "/x", "rwc", "420"]

    def test_eof_mid_line_raises_disconnected(self):
        stream = LineStream(FakeSocket([b"partial line without newline"]))
        with pytest.raises(DisconnectedError):
            stream.read_line()

    def test_read_exact_spans_chunks(self):
        stream = LineStream(FakeSocket([b"abc", b"defg", b"hij"]))
        assert stream.read_exact(8) == b"abcdefgh"
        assert stream.read_exact(2) == b"ij"

    def test_read_exact_negative_rejected(self):
        stream = LineStream(FakeSocket([]))
        with pytest.raises(InvalidRequestError):
            stream.read_exact(-1)

    def test_read_exact_eof_raises(self):
        stream = LineStream(FakeSocket([b"abc"]))
        with pytest.raises(DisconnectedError):
            stream.read_exact(10)

    def test_line_plus_payload(self):
        stream = LineStream(FakeSocket([b"3\nABCtail\n"]))
        tokens = stream.read_tokens()
        assert tokens == ["3"]
        assert stream.read_exact(3) == b"ABC"
        assert stream.read_line() == b"tail\n"

    def test_read_into_file_streams(self):
        stream = LineStream(FakeSocket([b"12345", b"67890"]))
        sink = io.BytesIO()
        stream.read_into_file(sink, 10)
        assert sink.getvalue() == b"1234567890"

    def test_read_into_file_uses_buffered_bytes_first(self):
        stream = LineStream(FakeSocket([b"hdr\nPAYLOAD"]))
        assert stream.read_line() == b"hdr\n"
        sink = io.BytesIO()
        stream.read_into_file(sink, 7)
        assert sink.getvalue() == b"PAYLOAD"

    def test_write_from_file(self):
        sock = FakeSocket([])
        stream = LineStream(sock)
        stream.write_from_file(io.BytesIO(b"x" * 100), 100, chunk_size=7)
        assert bytes(sock.sent) == b"x" * 100

    def test_write_from_truncated_file_raises(self):
        stream = LineStream(FakeSocket([]))
        with pytest.raises(DisconnectedError):
            stream.write_from_file(io.BytesIO(b"short"), 100)

    def test_oversized_line_rejected(self):
        stream = LineStream(FakeSocket([b"x" * 70000]))
        with pytest.raises(InvalidRequestError):
            stream.read_line(max_len=65536)

    def test_oversized_line_crossing_max_mid_chunk(self):
        # The newline-free line arrives in small chunks and only crosses
        # MAX_LINE partway through the stream -- the reader must reject it
        # once the buffer exceeds the limit, not hang waiting for more.
        chunks = [b"y" * 8192 for _ in range(9)]  # 72 KiB, no newline yet
        chunks.append(b"z" * 100 + b"\n")
        stream = LineStream(FakeSocket(chunks))
        with pytest.raises(InvalidRequestError):
            stream.read_line(max_len=65536)

    def test_payload_reads_are_exempt_from_line_limit(self):
        # Binary payloads follow the status line and may far exceed
        # MAX_LINE; only line framing is bounded.
        big = b"p" * (65536 * 2)
        stream = LineStream(FakeSocket([b"131072\n", big[:70000], big[70000:]]))
        assert stream.read_tokens() == ["131072"]
        assert stream.read_exact(len(big)) == big

    def test_close_is_idempotent(self):
        sock = FakeSocket([])
        stream = LineStream(sock)
        stream.close()
        stream.close()
        assert sock.closed
