"""Process-level chaos harness: real daemons, scripted signals."""
