"""Seeded process-level crash/restart soak over a real TSS cluster.

Unlike the in-process chaos suites (which inject faults into objects),
this harness boots *actual operating-system processes* -- a catalog, a
metadata database, three file servers, and a keeper -- then delivers a
seeded schedule of SIGKILL / SIGTERM / SIGSTOP to them mid-workload via
:class:`repro.sim.procchaos.ProcSupervisor`.

The invariants asserted are the paper-level ones:

- **No acknowledged write is ever lost.**  A write enters the ledger
  only after ``DSDB.ingest`` returns; after the soak (and after every
  victim is restarted) each ledger entry must fetch back verified.
- **No corrupt bytes are ever served.**  Every successful read during
  and after the soak is compared byte-for-byte against the ledger.
- **The keeper restores the replication factor.**  After convergence
  every acked record carries >= 2 ``ok`` replicas on distinct servers.
- **Determinism.**  The fault schedule is a pure function of the seed,
  so any CI failure replays from the seed plus the JSONL event log.

Artifacts (event log, per-process stderr) land in the directory named
by ``PROC_CHAOS_ARTIFACTS`` so a failing CI run uploads exactly what
happened, in order.
"""

from __future__ import annotations

import getpass
import os
import time

import pytest

from repro.auth.methods import ClientCredentials
from repro.core.dsdb import DSDB, live_replicas
from repro.core.pool import ClientPool
from repro.db.client import DatabaseClient
from repro.sim.procchaos import (
    ProcSupervisor,
    build_plan,
    free_port,
    python_module_argv,
    wait_for_port,
)
from repro.util import errors as E

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(os.name != "posix", reason="POSIX signals required"),
]

HOST = "127.0.0.1"
SEED = int(os.environ.get("PROC_CHAOS_SEED", "20260807"))
STEPS = 12  # acked writes attempted during the soak
EVENTS = 5  # faults delivered between writes
VOLUME = "chaosvol"
COPIES = 2


def _artifacts_dir(tmp_path) -> str:
    base = os.environ.get("PROC_CHAOS_ARTIFACTS")
    path = base if base else str(tmp_path / "artifacts")
    os.makedirs(path, exist_ok=True)
    return path


class ChaosCluster:
    """A real multi-process TSS deployment under one supervisor."""

    SERVERS = ("s1", "s2", "s3")

    def __init__(self, tmp_path, artifacts: str):
        self.tmp_path = tmp_path
        self.owner = f"unix:{getpass.getuser()}"
        self.sup = ProcSupervisor(
            log_path=os.path.join(artifacts, "procchaos-events.jsonl"),
            stderr_dir=artifacts,
        )
        self.catalog_port = free_port()
        self.db_port = free_port()
        self.server_ports: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------

    def boot(self) -> None:
        sup = self.sup
        sup.spawn(
            "catalog",
            python_module_argv(
                "repro.catalog.main",
                "--host", HOST, "--port", self.catalog_port, "--lifetime", 5.0,
            ),
        )
        dbdir = self.tmp_path / "dbstate"
        dbdir.mkdir(exist_ok=True)
        sup.spawn(
            "db",
            python_module_argv(
                "repro.db.server",
                "--host", HOST, "--port", self.db_port, "--path", dbdir,
            ),
        )
        for name in self.SERVERS:
            port = free_port()
            self.server_ports[name] = port
            root = self.tmp_path / f"root-{name}"
            root.mkdir(exist_ok=True)
            sup.spawn(name, self._server_argv(name, port, root))
        assert wait_for_port(HOST, self.catalog_port), "catalog never came up"
        assert wait_for_port(HOST, self.db_port), "database never came up"
        for name, port in self.server_ports.items():
            assert wait_for_port(HOST, port), f"server {name} never came up"
        state = self.tmp_path / "keeper-state"
        server_flags = []
        for name in self.SERVERS:
            server_flags += ["--server", f"{HOST}:{self.server_ports[name]}"]
        sup.spawn(
            "keeper",
            python_module_argv(
                "repro.cli", "keeper",
                "--db", f"{HOST}:{self.db_port}",
                *server_flags,
                "--catalog", f"{HOST}:{self.catalog_port}",
                "--volume", VOLUME,
                "--state-dir", state,
                "--copies", COPIES,
                "--tick-interval", 0.2,
                "--catalog-lifetime", 2.0,
                "--verbose",
            ),
        )
        time.sleep(0.3)
        assert sup.alive("keeper"), "keeper died at boot"

    def _server_argv(self, name: str, port: int, root) -> list:
        return python_module_argv(
            "repro.chirp.main",
            "--root", root,
            "--host", HOST, "--port", port,
            "--owner", self.owner,
            "--auth", "unix",
            "--name", f"chaos-{name}",
            "--catalog", f"{HOST}:{self.catalog_port}",
            "--report-interval", 0.3,
            "--drain-timeout", 5.0,
        )

    def endpoints(self) -> list[tuple[str, int]]:
        return [(HOST, self.server_ports[n]) for n in self.SERVERS]

    def revive_all(self) -> None:
        """Bring every victim back: SIGCONT the stalled, restart the dead."""
        for name in ("keeper", *self.SERVERS):
            managed = self.sup.procs[name]
            if managed.stopped:
                self.sup.sigcont(name)
            elif not managed.alive:
                self.sup.wait(name, timeout=10.0)
                self.sup.restart(name, settle=0.1)
                if name in self.server_ports:
                    assert wait_for_port(HOST, self.server_ports[name]), (
                        f"server {name} did not reclaim its port"
                    )

    def shutdown(self) -> None:
        self.sup.shutdown()


@pytest.fixture()
def cluster(tmp_path):
    artifacts = _artifacts_dir(tmp_path)
    c = ChaosCluster(tmp_path, artifacts)
    c.boot()
    try:
        yield c
    finally:
        c.shutdown()


def _payload(seed: int, step: int) -> bytes:
    # Deterministic per-write payload; varies in size to cross the
    # streaming threshold on some writes.
    import random

    rng = random.Random((seed << 8) | step)
    return rng.randbytes(1024 + rng.randrange(8192))


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        victims = ("s1", "s2", "s3", "keeper")
        a = build_plan(SEED, STEPS, victims, events=EVENTS)
        b = build_plan(SEED, STEPS, victims, events=EVENTS)
        assert a == b
        assert len(a) == EVENTS
        assert all(1 <= e.step <= STEPS for e in a)

    def test_different_seed_usually_differs(self):
        victims = ("s1", "s2", "s3")
        plans = {build_plan(s, STEPS, victims, events=EVENTS) for s in range(8)}
        assert len(plans) > 1


class TestProcChaosSoak:
    """The end-to-end soak: kill real processes, lose no acked write."""

    def test_seeded_kill_restart_soak(self, cluster):
        sup = cluster.sup
        victims = ("s1", "s2", "s3", "keeper")
        plan = build_plan(SEED, STEPS, victims, events=EVENTS)
        faults = {event.step: event for event in plan}

        credentials = ClientCredentials(methods=("unix",))
        pool = ClientPool(credentials, timeout=5.0)
        db = DatabaseClient(HOST, cluster.db_port, credentials=credentials)
        dsdb = DSDB(db, pool, cluster.endpoints(), volume=VOLUME)

        ledger: list[tuple[str, bytes]] = []  # (record id, exact bytes)
        unacked = 0
        try:
            for step in range(1, STEPS + 1):
                data = _payload(SEED, step)
                rid = self._ingest_with_retry(sup, dsdb, f"obj-{step}", data)
                if rid is None:
                    unacked += 1
                else:
                    ledger.append((rid, data))
                # Reads during faults must never return corrupt bytes.
                if ledger:
                    self._spot_read(sup, dsdb, ledger[(step - 1) % len(ledger)])
                event = faults.get(step)
                if event is not None:
                    self._deliver(cluster, event)

            # The soak must have produced real coverage despite faults.
            assert len(ledger) >= STEPS // 2, (
                f"only {len(ledger)} acked writes out of {STEPS} "
                f"({unacked} unacked)"
            )

            cluster.revive_all()
            self._await_convergence(dsdb, ledger)
        finally:
            pool.close()
            db.close()

    # -- workload helpers ----------------------------------------------

    def _ingest_with_retry(self, sup, dsdb, name: str, data: bytes):
        """Attempt one acked write; returns the record id or None.

        Placement is round-robin over a cluster where a victim may be
        dead or stalled, so individual attempts can fail -- the retry
        rotates onto live servers.  Only a *returned* ingest is acked.
        """
        for attempt in range(8):
            try:
                record = dsdb.ingest(name, data, replicas=COPIES)
                sup.record("ingest_acked", name, rid=record["id"])
                return record["id"]
            except (E.ChirpError, OSError) as exc:
                sup.record(
                    "ingest_retry", name,
                    attempt=attempt, error=type(exc).__name__,
                )
                time.sleep(0.25)
        sup.record("ingest_unacked", name)
        return None

    def _spot_read(self, sup, dsdb, entry) -> None:
        """A read may fail during faults (availability), but bytes that
        do come back must match the ledger (integrity)."""
        rid, expected = entry
        try:
            got = dsdb.fetch(rid, verify=True)
        except (E.ChirpError, OSError) as exc:
            sup.record("read_unavailable", rid, error=type(exc).__name__)
            return
        assert got == expected, f"corrupt bytes served for record {rid}"

    def _deliver(self, cluster, event) -> None:
        """Carry out one planned fault and its follow-through."""
        sup = cluster.sup
        name = event.victim
        sup.record("chaos", name, step=event.step, planned=event.action)
        if event.action == "sigstop":
            if sup.sigstop(name):
                time.sleep(0.5)  # a wedged machine, briefly
                sup.sigcont(name)
            return
        if event.action == "sigterm":
            sup.sigterm(name)  # graceful: drain, then exit
        else:
            sup.sigkill(name)  # crash: no goodbye
        sup.wait(name, timeout=10.0)
        sup.restart(name, settle=0.1)
        if name in cluster.server_ports:
            assert wait_for_port(HOST, cluster.server_ports[name]), (
                f"{name} did not come back after {event.action}"
            )

    def _await_convergence(self, dsdb, ledger, timeout: float = 45.0) -> None:
        """All acked data readable+verified and back at full RF."""
        assert ledger, "nothing to converge on"
        deadline = time.monotonic() + timeout
        pending = {rid for rid, _ in ledger}
        while pending and time.monotonic() < deadline:
            for rid in sorted(pending):
                record = dsdb.get(rid)
                assert record is not None, f"acked record {rid} vanished"
                ok = live_replicas(record)
                if len({(r["host"], r["port"]) for r in ok}) >= COPIES:
                    pending.discard(rid)
            if pending:
                time.sleep(0.5)
        if pending:
            states = {
                rid: [
                    (r["host"], r["port"], r.get("state"))
                    for r in (dsdb.get(rid) or {}).get("replicas", [])
                ]
                for rid in sorted(pending)
            }
            raise AssertionError(
                f"keeper never restored RF>={COPIES} for "
                f"{len(pending)} records: {states}"
            )
        # Every acked byte must read back verified, byte-for-byte.
        for rid, expected in ledger:
            got = dsdb.fetch(rid, verify=True)
            assert got == expected, f"record {rid} corrupt after soak"


class TestSupervisorBasics:
    """Supervisor mechanics exercised on a trivial child process."""

    def test_spawn_kill_restart_cycle(self, tmp_path):
        artifacts = _artifacts_dir(tmp_path)
        sup = ProcSupervisor(
            log_path=os.path.join(artifacts, "basics.jsonl"),
            stderr_dir=artifacts,
        )
        argv = python_module_argv("http.server", "0", "--bind", HOST)
        sup.spawn("child", argv)
        assert sup.alive("child")
        sup.sigkill("child")
        assert sup.wait("child", timeout=10.0) is not None
        assert not sup.alive("child")
        fresh = sup.restart("child")
        assert fresh.restarts == 1
        assert sup.alive("child")
        sup.shutdown()
        assert not sup.alive("child")
        actions = [e["action"] for e in sup.events]
        for expected in ("spawn", "signal", "exit", "restart", "shutdown"):
            assert expected in actions
        # The JSONL log replays the same sequence numbers.
        import json

        with open(os.path.join(artifacts, "basics.jsonl")) as fh:
            logged = [json.loads(line) for line in fh]
        assert [e["seq"] for e in logged] == sorted(e["seq"] for e in logged)

    def test_sigstop_tracking_and_shutdown_unwedges(self, tmp_path):
        sup = ProcSupervisor()
        sup.spawn("child", python_module_argv("http.server", "0", "--bind", HOST))
        sup.sigstop("child")
        assert sup.procs["child"].stopped
        # shutdown() must SIGCONT a stalled process so SIGTERM can land.
        sup.shutdown(grace=5.0)
        assert not sup.alive("child")

    def test_restart_refuses_live_process(self, tmp_path):
        sup = ProcSupervisor()
        sup.spawn("child", python_module_argv("http.server", "0", "--bind", HOST))
        try:
            with pytest.raises(RuntimeError):
                sup.restart("child")
        finally:
            sup.shutdown()
