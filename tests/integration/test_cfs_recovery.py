"""Integration tests: CFS semantics and disconnection recovery.

These exercise the paper's failure story end to end: the server frees
everything on disconnect; the adapter-side handle reconnects with
backoff, re-opens, verifies the inode, and either carries on invisibly or
reports a stale handle.
"""

import os

import pytest

from repro.chirp.client import ChirpClient
from repro.chirp.protocol import OpenFlags
from repro.chirp.server import FileServer, ServerConfig
from repro.core.cfs import CFS
from repro.core.retry import RetryPolicy
from repro.util import errors as E

FAST = dict(max_attempts=8, initial_delay=0.05, multiplier=1.5, max_delay=0.4)


@pytest.fixture()
def cfs_setup(tmp_path, auth_context, credentials):
    root = tmp_path / "export"
    root.mkdir()
    server = FileServer(
        ServerConfig(root=str(root), owner="unix:root", auth=auth_context)
    ).start()
    client = ChirpClient(*server.address, credentials=credentials)
    cfs = CFS(client, policy=RetryPolicy(**FAST))
    state = {"server": server, "root": root, "auth": auth_context}
    yield cfs, client, state
    client.close()
    state["server"].stop()


def restart_server(state):
    """Stop the server and bring a fresh one up on the same port+root."""
    addr = state["server"].address
    state["server"].stop()
    state["server"] = FileServer(
        ServerConfig(
            root=str(state["root"]),
            owner="unix:root",
            host=addr[0],
            port=addr[1],
            auth=state["auth"],
        )
    ).start()


class TestCfsBasics:
    def test_write_read_via_interface(self, cfs_setup):
        cfs, _, _ = cfs_setup
        cfs.write_file("/f.txt", b"central")
        assert cfs.read_file("/f.txt") == b"central"
        assert cfs.stat("/f.txt").size == 7

    def test_namespace_ops(self, cfs_setup):
        cfs, _, _ = cfs_setup
        cfs.mkdir("/d")
        cfs.write_file("/d/a", b"1")
        assert cfs.listdir("/d") == ["a"]
        cfs.rename("/d/a", "/d/b")
        cfs.unlink("/d/b")
        cfs.rmdir("/d")

    def test_subtree_root_mapping(self, cfs_setup):
        cfs, client, _ = cfs_setup
        cfs.mkdir("/sub")
        sub = CFS(client, root="/sub", policy=RetryPolicy(**FAST))
        sub.write_file("/inner.txt", b"scoped")
        assert cfs.read_file("/sub/inner.txt") == b"scoped"
        assert sub.listdir("/") == ["inner.txt"]

    def test_handles_are_position_free(self, cfs_setup):
        cfs, _, _ = cfs_setup
        cfs.write_file("/f", b"0123456789")
        with cfs.open("/f", OpenFlags(read=True)) as h:
            assert h.pread(3, 7) == b"789"
            assert h.pread(3, 0) == b"012"

    def test_sync_writes_flag_adds_o_sync(self, cfs_setup):
        cfs, client, _ = cfs_setup
        sync_cfs = CFS(client, policy=RetryPolicy(**FAST), sync_writes=True)
        sync_cfs.write_file("/s.txt", b"durable")
        assert sync_cfs.read_file("/s.txt") == b"durable"

    def test_no_client_caching_cross_visibility(self, cfs_setup, credentials):
        """Direct access: a second client sees writes immediately."""
        cfs, _, state = cfs_setup
        other = ChirpClient(*state["server"].address, credentials=credentials)
        cfs.write_file("/shared", b"v1")
        assert other.getfile("/shared") == b"v1"
        other.putfile("/shared", b"v2")
        assert cfs.read_file("/shared") == b"v2"
        other.close()


class TestRecovery:
    def test_path_ops_survive_server_restart(self, cfs_setup):
        cfs, _, state = cfs_setup
        cfs.write_file("/f", b"before")
        restart_server(state)
        assert cfs.read_file("/f") == b"before"  # transparent reconnect

    def test_open_handle_survives_restart(self, cfs_setup):
        cfs, _, state = cfs_setup
        cfs.write_file("/f", b"0123456789")
        handle = cfs.open("/f", OpenFlags(read=True))
        assert handle.pread(3, 0) == b"012"
        restart_server(state)
        # same inode on the re-opened file: the handle recovers invisibly
        assert handle.pread(3, 7) == b"789"
        handle.close()

    def test_replaced_file_yields_stale_handle(self, cfs_setup):
        cfs, _, state = cfs_setup
        cfs.write_file("/f", b"original")
        handle = cfs.open("/f", OpenFlags(read=True))
        assert handle.pread(8, 0) == b"original"
        state["server"].stop()
        # replace the file while the server is down -- built via rename so
        # the imposter is guaranteed a different inode (a bare
        # unlink+create could reuse the freed inode number)
        path = state["root"] / "f"
        imposter = state["root"] / "f.new"
        imposter.write_bytes(b"imposter")
        os.replace(str(imposter), str(path))
        restart_server(state)
        with pytest.raises(E.StaleHandleError):
            handle.pread(8, 0)
        handle.close()

    def test_deleted_file_yields_missing_on_recovery(self, cfs_setup):
        cfs, _, state = cfs_setup
        cfs.write_file("/f", b"data")
        handle = cfs.open("/f", OpenFlags(read=True))
        state["server"].stop()
        os.unlink(str(state["root"] / "f"))
        restart_server(state)
        with pytest.raises((E.DoesNotExistError, E.StaleHandleError)):
            handle.pread(4, 0)
        handle.close()

    def test_reopen_does_not_truncate(self, cfs_setup):
        """Recovery must strip O_TRUNC: a write handle that reconnects
        must never clobber the data it was writing."""
        cfs, _, state = cfs_setup
        flags = OpenFlags(read=True, write=True, create=True, truncate=True)
        handle = cfs.open("/f", flags)
        handle.pwrite(b"precious", 0)
        restart_server(state)
        handle.pwrite(b"X", 8)  # recovers; must not truncate
        assert handle.pread(9, 0) == b"preciousX"
        handle.close()

    def test_two_handles_share_one_reconnect(self, cfs_setup):
        cfs, client, state = cfs_setup
        cfs.write_file("/a", b"aaa")
        cfs.write_file("/b", b"bbb")
        ha = cfs.open("/a", OpenFlags(read=True))
        hb = cfs.open("/b", OpenFlags(read=True))
        restart_server(state)
        gen_before = client.generation
        assert ha.pread(3, 0) == b"aaa"  # triggers the reconnect
        assert hb.pread(3, 0) == b"bbb"  # reuses the new connection
        assert client.generation == gen_before + 1

    def test_server_down_for_good_raises_disconnected(self, cfs_setup):
        cfs, _, state = cfs_setup
        cfs.write_file("/f", b"x")
        state["server"].stop()
        with pytest.raises(E.DisconnectedError):
            cfs.read_file("/f")

    def test_retry_disabled_fails_fast(self, cfs_setup, credentials):
        cfs, _, state = cfs_setup
        cfs.write_file("/f", b"x")
        client2 = ChirpClient(*state["server"].address, credentials=credentials)
        no_retry = CFS(client2, policy=RetryPolicy(max_attempts=1))
        state["server"].stop()
        with pytest.raises(E.DisconnectedError):
            no_retry.read_file("/f")
        client2.close()

    def test_closed_handle_rejects_io(self, cfs_setup):
        cfs, _, _ = cfs_setup
        cfs.write_file("/f", b"x")
        handle = cfs.open("/f", OpenFlags(read=True))
        handle.close()
        with pytest.raises(E.DisconnectedError):
            handle.pread(1, 0)
