"""Integration tests: alternate store backends behind a live server.

Covers the visible ends of the abstraction/resource split: servers
running on memory and CAS resources serve the unchanged protocol, the
content-addressed verbs enable zero-payload replication and O(1)
key audits, and VersionedFS snapshots share storage on CAS servers.
"""

import pytest

from repro.chirp.protocol import OpenFlags
from repro.core.dsdb import DSDB
from repro.core.metastore import ChirpMetadataStore
from repro.core.placement import RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.core.retry import RetryPolicy
from repro.core.versionfs import VersionedFS
from repro.db.engine import MetadataDB
from repro.gems import Auditor, FixedCountPolicy, Keeper, KeeperConfig
from repro.transport.metrics import MetricsRegistry
from repro.util import errors as E
from repro.util.checksum import data_checksum

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


class TestAlternateBackends:
    def test_memory_server_roundtrip(self, server_factory, pool):
        server = server_factory.new(store="memory")
        client = pool.get(*server.address)
        client.mkdir("/d")
        client.putfile("/d/f.txt", b"in-memory bytes")
        assert client.getfile("/d/f.txt") == b"in-memory bytes"
        assert client.getdir("/d") == ["f.txt"]
        assert client.checksum("/d/f.txt") == data_checksum(b"in-memory bytes")
        client.unlink("/d/f.txt")
        assert not client.exists("/d/f.txt")
        assert server.build_report()["store"] == "memory"

    def test_cas_server_roundtrip_and_dedup(self, server_factory, pool):
        server = server_factory.new(store="cas")
        client = pool.get(*server.address)
        # the root ACL blob is itself a CAS object; count from here
        baseline = server.store.object_count()
        client.putfile("/a.txt", b"identical content")
        client.putfile("/b.txt", b"identical content")
        assert client.getfile("/a.txt") == b"identical content"
        assert client.getfile("/b.txt") == b"identical content"
        key = data_checksum(b"identical content")
        assert server.store.refcount(key) == 2
        assert server.store.object_count() == baseline + 1
        assert server.build_report()["store"] == "cas"

    def test_cas_verbs_over_the_wire(self, server_factory, pool):
        server = server_factory.new(store="cas")
        client = pool.get(*server.address)
        key = data_checksum(b"wire payload")
        assert client.lookup(key) is False
        client.putfile("/orig", b"wire payload")
        assert client.lookup(key) is True
        assert client.keyof("/orig") == key
        size = client.putkey("/copy", key)
        assert size == len(b"wire payload")
        assert client.getfile("/copy") == b"wire payload"

    def test_non_cas_server_refuses_cas_verbs(self, server_factory, pool):
        server = server_factory.new(store="local")
        client = pool.get(*server.address)
        client.putfile("/f", b"plain bytes")
        with pytest.raises(E.InvalidRequestError):
            client.keyof("/f")
        with pytest.raises(E.InvalidRequestError):
            client.lookup(data_checksum(b"plain bytes"))
        with pytest.raises(E.InvalidRequestError):
            client.putkey("/g", data_checksum(b"plain bytes"))


def _make_dsdb(server_factory, pool, n=2, store="cas"):
    servers = [server_factory.new(store=store) for _ in range(n)]
    db = MetadataDB(None, indexes=("tss_kind", "name"))
    dsdb = DSDB(
        db,
        pool,
        [s.address for s in servers],
        volume="gems",
        placement=RoundRobinPlacement(seed=2),
    )
    dsdb._test_servers = servers
    return dsdb


class TestCopyByReference:
    def test_replication_of_present_key_moves_no_payload(
        self, server_factory, pool, credentials
    ):
        dsdb = _make_dsdb(server_factory, pool)
        payload = b"replicate me by reference" * 100
        rec = dsdb.ingest("data/blob", payload, {})
        holder = (rec["replicas"][0]["host"], rec["replicas"][0]["port"])
        target_server = next(
            s for s in dsdb._test_servers if s.address != holder
        )
        # The target already holds an object with this content (under an
        # unrelated path), so replication can bind a key instead of
        # streaming bytes.
        pool.get(*target_server.address).putfile("/unrelated", payload)

        registry = MetricsRegistry()
        metered = ClientPool(credentials, timeout=10.0, metrics=registry)
        try:
            dsdb.pool = metered
            new_rep = dsdb.copy_replica(rec, target_server.address)
        finally:
            dsdb.pool = pool
            metered.close()

        verbs = registry.snapshot()["verbs"]
        assert verbs["putkey"]["calls"] >= 1
        # zero payload bytes crossed the wire in either direction
        assert verbs.get("putfile", {}).get("bytes_out", 0) == 0
        assert verbs.get("getfile", {}).get("bytes_in", 0) == 0
        assert verbs.get("pread", {}).get("bytes_in", 0) == 0
        # ... and the replica is real
        assert new_rep["host"], new_rep["port"] == target_server.address
        assert pool.get(*target_server.address).getfile(new_rep["path"]) == payload

    def test_falls_back_to_byte_transfer_when_key_absent(
        self, server_factory, pool
    ):
        dsdb = _make_dsdb(server_factory, pool)
        payload = b"nowhere else"
        rec = dsdb.ingest("data/unique", payload, {})
        holder = (rec["replicas"][0]["host"], rec["replicas"][0]["port"])
        target = next(
            s.address for s in dsdb._test_servers if s.address != holder
        )
        new_rep = dsdb.copy_replica(rec, target)
        assert pool.get(*target).getfile(new_rep["path"]) == payload

    def test_falls_back_on_non_cas_targets(self, server_factory, pool):
        dsdb = _make_dsdb(server_factory, pool, store="local")
        payload = b"old-style servers still replicate"
        rec = dsdb.ingest("data/legacy", payload, {})
        holder = (rec["replicas"][0]["host"], rec["replicas"][0]["port"])
        target = next(
            s.address for s in dsdb._test_servers if s.address != holder
        )
        new_rep = dsdb.copy_replica(rec, target)
        assert pool.get(*target).getfile(new_rep["path"]) == payload


class TestKeyAudit:
    def test_key_audit_flags_corruption_without_payload_reads(
        self, server_factory, pool, credentials
    ):
        dsdb = _make_dsdb(server_factory, pool)
        rec = dsdb.ingest("data/audited", b"pristine content", {})
        replica = rec["replicas"][0]
        # Corrupt through the front door: overwriting the path rebinds
        # it to a different key, exactly what a tampered or torn replica
        # looks like to a key audit.
        pool.get(replica["host"], replica["port"]).putfile(
            replica["path"], b"tampered!"
        )

        registry = MetricsRegistry()
        metered = ClientPool(credentials, timeout=10.0, metrics=registry)
        try:
            dsdb.pool = metered
            report = Auditor(dsdb, mode="key").audit_once()
        finally:
            dsdb.pool = pool
            metered.close()

        assert report.damaged == 1
        verbs = registry.snapshot()["verbs"]
        assert verbs["keyof"]["calls"] >= 1
        # the audit never read file payload over the wire
        assert verbs.get("getfile", {}).get("bytes_in", 0) == 0
        assert verbs.get("pread", {}).get("bytes_in", 0) == 0
        assert "checksum" not in verbs

    def test_key_audit_passes_healthy_replicas(self, server_factory, pool):
        dsdb = _make_dsdb(server_factory, pool)
        dsdb.ingest("data/fine", b"intact", {})
        report = Auditor(dsdb, mode="key").audit_once()
        assert report.damaged == 0 and report.missing == 0
        assert report.healthy == report.replicas_checked

    def test_keeper_runs_key_audits(self, server_factory, pool, tmp_path):
        from repro.util.clock import ManualClock

        dsdb = _make_dsdb(server_factory, pool)
        rec = dsdb.ingest("data/kept", b"guarded", {})
        rec = dsdb.add_replica(rec)  # a second, healthy copy
        replica = rec["replicas"][0]
        pool.get(replica["host"], replica["port"]).putfile(
            replica["path"], b"mangled"
        )
        keeper = Keeper(
            dsdb,
            FixedCountPolicy(2),
            KeeperConfig(
                state_dir=str(tmp_path / "keeper"),
                audit_mode="key",
                scan_batch=16,
                max_repairs_per_tick=16,
            ),
            clock=ManualClock(),
        )
        keeper.run_passes(2)
        assert keeper.snapshot()["damaged"] >= 1
        # the keeper healed it: a live replica with the right bytes
        healed = next(
            r for r in dsdb.find()[0]["replicas"] if r["state"] == "ok"
        )
        assert pool.get(healed["host"], healed["port"]).getfile(
            healed["path"]
        ) == b"guarded"

    def test_key_audit_falls_back_to_bytes_on_local_servers(
        self, server_factory, pool
    ):
        dsdb = _make_dsdb(server_factory, pool, store="local")
        rec = dsdb.ingest("data/legacy", b"pristine", {})
        replica = rec["replicas"][0]
        pool.get(replica["host"], replica["port"]).putfile(
            replica["path"], b"rotted"
        )
        report = Auditor(dsdb, mode="key").audit_once()
        assert report.damaged == 1


class TestVersionedSnapshotSharing:
    @pytest.fixture()
    def vfs(self, server_factory, pool):
        # One CAS data server so every version lands in the same store.
        data_server = server_factory.new(store="cas")
        dir_server = server_factory.new()
        dir_client = pool.get(*dir_server.address)
        dir_client.mkdir("/vvol")
        data_client = pool.get(*data_server.address)
        data_client.mkdir("/tssdata")
        data_client.mkdir("/tssdata/vvol")
        clock = {"now": 1000.0}

        def now():
            clock["now"] += 1.0
            return clock["now"]

        fs = VersionedFS(
            ChirpMetadataStore(dir_client, "/vvol", FAST),
            pool,
            [data_server.address],
            "/tssdata/vvol",
            policy=FAST,
            now=now,
        )
        fs._data_server = data_server
        return fs

    def test_unchanged_snapshots_share_one_blob(self, vfs):
        payload = b"same bytes every night" * 50
        vfs.write_file("/backup.img", payload)
        vfs.write_file("/backup.img", payload)
        vfs.write_file("/backup.img", payload)
        assert len(vfs.versions("/backup.img")) == 3
        key = data_checksum(payload)
        store = vfs._data_server.store
        # three versions, one physical object
        assert store.refcount(key) == 3
        assert store.lookup_key(key)

    def test_modify_in_place_seeds_by_key(self, vfs):
        vfs.write_file("/doc", b"0123456789")
        before = vfs._data_server.store.snapshot().get("links", 0)
        handle = vfs.open("/doc", OpenFlags(write=True))
        handle.pwrite(b"AB", 2)
        handle.close()
        after = vfs._data_server.store.snapshot().get("links", 0)
        assert after > before  # the new version was seeded via putkey
        assert vfs.read_version("/doc", 1) == b"0123456789"
        assert vfs.read_file("/doc") == b"01AB456789"


class TestServerMetricsSection:
    def test_store_counters_surface_through_registry(
        self, server_factory, pool
    ):
        registry = MetricsRegistry()
        server = server_factory.new(store="cas", metrics=registry)
        baseline = server.store.used_bytes()  # the root ACL blob
        client = pool.get(*server.address)
        client.putfile("/a", b"counted content")
        client.putfile("/b", b"counted content")
        snap = registry.snapshot()
        assert snap["store"]["kind"] == "cas"
        assert snap["store"]["objects_ingested"] >= 1
        assert snap["store"]["dedup_hits"] >= 1
        assert snap["store"]["used_bytes"] == baseline + len(b"counted content")
