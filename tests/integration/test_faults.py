"""Integration tests: the TCP fault proxy, one-shot retry, idle reaping.

The fault proxy is the PR's test harness for everything the paper says
about failure ("a server that is lost ... simply results in an error"),
so it gets behavioural tests of its own: every injected fault must look
to a client exactly like the real-world failure it models.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.chirp.client import ChirpClient
from repro.transport.dial import oneshot_exchange
from repro.transport.faults import (
    RESET,
    STALL,
    TRUNCATE,
    FaultPlan,
    FaultScript,
    FaultyListener,
)
from repro.transport.metrics import MetricsRegistry
from repro.util.errors import DisconnectedError


class _EchoServer:
    """A minimal upstream: echoes whatever each connection sends."""

    def __init__(self):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self._sock.settimeout(0.2)
        self.address = self._sock.getsockname()[:2]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._echo, args=(conn,), daemon=True).start()

    @staticmethod
    def _echo(conn):
        with conn:
            conn.settimeout(5.0)
            while True:
                try:
                    data = conn.recv(65536)
                except OSError:
                    return
                if not data:
                    return
                try:
                    conn.sendall(data)
                except OSError:
                    return

    def close(self):
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


class _OneShotServer:
    """Reply ``pong:<request>`` then close -- the catalog's protocol shape."""

    def __init__(self):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self._sock.settimeout(0.2)
        self.address = self._sock.getsockname()[:2]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                try:
                    conn.settimeout(5.0)
                    data = conn.recv(65536)
                    conn.sendall(b"pong:" + data)
                except OSError:
                    pass

    def close(self):
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


@pytest.fixture()
def echo():
    server = _EchoServer()
    yield server
    server.close()


@pytest.fixture()
def oneshot_upstream():
    server = _OneShotServer()
    yield server
    server.close()


def _connect(address, timeout=5.0) -> socket.socket:
    sock = socket.create_connection(address, timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _attempt(address) -> tuple[bytes, str]:
    """Connect and drain; a refusal may reset the connect itself."""
    try:
        sock = _connect(address)
    except OSError:
        return b"", "reset"
    with sock:
        sock.settimeout(5.0)
        return _drain(sock)


def _drain(sock) -> tuple[bytes, str]:
    """Read until EOF or error; classify how the connection ended."""
    chunks = []
    while True:
        try:
            data = sock.recv(65536)
        except socket.timeout:
            return b"".join(chunks), "timeout"
        except OSError:
            return b"".join(chunks), "reset"
        if not data:
            return b"".join(chunks), "eof"
        chunks.append(data)


class TestFaultyListener:
    def test_pass_through(self, echo):
        with FaultyListener(echo.address) as proxy:
            with _connect(proxy.address) as sock:
                sock.sendall(b"ping\n")
                assert sock.recv(64) == b"ping\n"
            assert proxy.event_log() == ("conn 0: pass",)

    def test_refusal_resets_immediately(self, echo):
        plan = FaultPlan().script(FaultScript(refuse=True))
        with FaultyListener(echo.address, plan) as proxy:
            data, ending = _attempt(proxy.address)
            assert data == b""
            assert ending in ("eof", "reset")
            assert proxy.event_log() == ("conn 0: refuse",)

    def test_truncation_forwards_exactly_n_bytes(self, echo):
        plan = FaultPlan().script(
            FaultScript(cut_after_out=4, action=TRUNCATE, note="short-read")
        )
        with FaultyListener(echo.address, plan) as proxy:
            with _connect(proxy.address) as sock:
                sock.settimeout(5.0)
                sock.sendall(b"hello!")
                data, ending = _drain(sock)
            assert data == b"hell"
            assert ending == "eof"
            assert "conn 0: truncate out at byte 4" in proxy.event_log()

    def test_mid_stream_reset(self, echo):
        plan = FaultPlan().script(FaultScript(cut_after_out=4, action=RESET))
        with FaultyListener(echo.address, plan) as proxy:
            with _connect(proxy.address) as sock:
                sock.settimeout(5.0)
                sock.sendall(b"hello!")
                data, ending = _drain(sock)
            assert len(data) <= 4
            assert ending == "reset"
            assert "conn 0: reset out at byte 4" in proxy.event_log()

    def test_stall_holds_the_socket_open(self, echo):
        plan = FaultPlan().script(FaultScript(cut_after_out=0, action=STALL))
        with FaultyListener(echo.address, plan) as proxy:
            with _connect(proxy.address) as sock:
                sock.settimeout(0.4)
                sock.sendall(b"anyone there?\n")
                data, ending = _drain(sock)
                assert data == b""
                assert ending == "timeout"  # no EOF, no reset: a hang
            assert "conn 0: stall out at byte 0" in proxy.event_log()

    def test_accept_delay_adds_latency(self, echo):
        plan = FaultPlan().script(FaultScript(accept_delay=0.2))
        with FaultyListener(echo.address, plan) as proxy:
            start = time.monotonic()
            with _connect(proxy.address) as sock:
                sock.settimeout(5.0)
                sock.sendall(b"ping\n")
                assert sock.recv(64) == b"ping\n"
            assert time.monotonic() - start >= 0.15

    def test_break_now_and_restore(self, echo):
        with FaultyListener(echo.address) as proxy:
            sock = _connect(proxy.address)
            sock.settimeout(5.0)
            sock.sendall(b"one\n")
            assert sock.recv(64) == b"one\n"
            proxy.break_now()
            data, ending = _drain(sock)
            assert (data, ending) != (b"one\n", "timeout")  # wire is dead
            sock.close()
            # New connections are refused while broken ...
            _, ending = _attempt(proxy.address)
            assert ending in ("eof", "reset")
            # ... and pass again after restore().
            proxy.restore()
            with _connect(proxy.address) as again:
                again.settimeout(5.0)
                again.sendall(b"two\n")
                assert again.recv(64) == b"two\n"
            log = proxy.event_log()
            assert "break_now" in log
            assert "restore" in log
            assert any("refused (break_now)" in e for e in log)

    def test_chaos_plans_replay_identically_for_a_seed(self):
        def draws(seed):
            plan = FaultPlan.chaos(
                seed,
                refuse_rate=0.2,
                reset_rate=0.2,
                truncate_rate=0.2,
                stall_rate=0.1,
                latency=(0.001, 0.01),
                cut_range=(10, 500),
            )
            return [plan.next_script().describe() for _ in range(32)]

        first = draws(1234)
        assert draws(1234) == first
        # With these rates a 32-draw run certainly injects something.
        assert any(d != "pass" for d in first)

    def test_queued_scripts_take_precedence_over_chaos(self):
        plan = FaultPlan.chaos(7, refuse_rate=1.0)
        plan.script(FaultScript(note="first"))
        assert plan.next_script().note == "first"
        assert plan.next_script().refuse  # falls back to the chaos draw


class TestOneshotRetry:
    def test_retries_through_a_refused_first_attempt(self, oneshot_upstream):
        plan = FaultPlan().script(FaultScript(refuse=True))
        with FaultyListener(oneshot_upstream.address, plan) as proxy:
            reply = oneshot_exchange(
                *proxy.address, b"hello", timeout=5.0, retry_delay=0.02
            )
            assert reply == b"pong:hello"
            log = proxy.event_log()
            assert log[0] == "conn 0: refuse"
            assert log[1] == "conn 1: pass"

    def test_single_attempt_does_not_retry(self, oneshot_upstream):
        plan = FaultPlan().script(FaultScript(refuse=True))
        with FaultyListener(oneshot_upstream.address, plan) as proxy:
            with pytest.raises(DisconnectedError):
                oneshot_exchange(
                    *proxy.address, b"hello", timeout=5.0, attempts=1
                )
            assert proxy.event_log() == ("conn 0: refuse",)

    def test_exhausted_attempts_raise_last_failure(self, oneshot_upstream):
        plan = (
            FaultPlan()
            .script(FaultScript(refuse=True))
            .script(FaultScript(refuse=True))
        )
        with FaultyListener(oneshot_upstream.address, plan) as proxy:
            with pytest.raises(DisconnectedError):
                oneshot_exchange(
                    *proxy.address, b"hello", timeout=5.0, retry_delay=0.02
                )
            assert len(proxy.event_log()) == 2

    def test_each_attempt_is_metered(self, oneshot_upstream):
        plan = FaultPlan().script(FaultScript(refuse=True))
        metrics = MetricsRegistry()
        with FaultyListener(oneshot_upstream.address, plan) as proxy:
            oneshot_exchange(
                *proxy.address,
                b"hi",
                timeout=5.0,
                metric="catalog",
                metrics=metrics,
                retry_delay=0.02,
            )
        verb = metrics.snapshot()["verbs"]["catalog"]
        assert verb["calls"] == 2
        assert verb["errors"] == 1


class TestIdleReaper:
    def test_silent_connection_is_reaped(self, server_factory, credentials):
        server = server_factory.new(idle_timeout=0.3)
        client = ChirpClient(*server.address, credentials=credentials, timeout=5.0)
        try:
            assert client.getdir("/") == []
            deadline = time.monotonic() + 5.0
            while server.reaped_connections == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.reaped_connections >= 1
            with pytest.raises(DisconnectedError):
                client.getdir("/")
        finally:
            client.close()

    def test_active_connection_survives(self, server_factory, credentials):
        server = server_factory.new(idle_timeout=0.75)
        client = ChirpClient(*server.address, credentials=credentials, timeout=5.0)
        try:
            # Keep talking for longer than the idle timeout; each request
            # refreshes the activity clock, so the reaper never fires.
            for _ in range(5):
                assert client.getdir("/") == []
                time.sleep(0.25)
            assert client.getdir("/") == []
            assert server.reaped_connections == 0
        finally:
            client.close()

    def test_reaper_disabled_by_default(self, server_factory, credentials):
        server = server_factory.new()
        client = ChirpClient(*server.address, credentials=credentials, timeout=5.0)
        try:
            assert client.getdir("/") == []
            time.sleep(0.3)
            assert client.getdir("/") == []
            assert server.reaped_connections == 0
        finally:
            client.close()
