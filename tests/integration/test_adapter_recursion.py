"""Recursive abstraction in practice: every abstraction mounts in the
adapter, and unmodified application code runs on all of them.

This is the paper's central architectural claim exercised end to end:
because everything implements the same Unix interface, the adapter (and
therefore unmodified applications) cannot tell a CFS from a DSFS from a
replicated, striped, or versioned filesystem.
"""

import os

import pytest

from repro.adapter.adapter import Adapter
from repro.adapter.interpose import interposed
from repro.core.dsfs import DSFS
from repro.core.metastore import ChirpMetadataStore
from repro.core.replfs import ReplicatedFS
from repro.core.retry import RetryPolicy
from repro.core.stripefs import StripedFS
from repro.core.versionfs import VersionedFS

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


@pytest.fixture()
def mounted(server_factory, pool):
    """One adapter with all four distributed abstractions mounted."""
    data = [server_factory.new() for _ in range(3)]
    dir_server = server_factory.new()
    dir_client = pool.get(*dir_server.address)
    endpoints = [s.address for s in data]
    for s in data:
        c = pool.get(*s.address)
        c.mkdir("/tssdata")
        for vol in ("r", "s", "v"):
            c.mkdir(f"/tssdata/{vol}")
    for vol in ("r", "s", "v"):
        dir_client.mkdir(f"/{vol}")

    adapter = Adapter(pool=pool, policy=FAST)
    adapter.mount(
        "/shared",
        DSFS.create(pool, *dir_server.address, "/dsfs", endpoints, name="d", policy=FAST),
    )
    adapter.mount(
        "/safe",
        ReplicatedFS(
            ChirpMetadataStore(dir_client, "/r", FAST),
            pool, endpoints, "/tssdata/r", copies=2, policy=FAST,
        ),
    )
    adapter.mount(
        "/fast",
        StripedFS(
            ChirpMetadataStore(dir_client, "/s", FAST),
            pool, endpoints, "/tssdata/s", stripe_size=1024, policy=FAST,
        ),
    )
    adapter.mount(
        "/history",
        VersionedFS(
            ChirpMetadataStore(dir_client, "/v", FAST),
            pool, endpoints, "/tssdata/v", policy=FAST,
        ),
    )
    return adapter


MOUNTS = ["/shared", "/safe", "/fast", "/history"]


class TestUniformSurface:
    @pytest.mark.parametrize("mount", MOUNTS)
    def test_posix_surface_is_identical(self, mounted, mount):
        """The same call sequence works against every abstraction."""
        payload = bytes(i % 251 for i in range(5000))
        with mounted.open(f"{mount}/file.bin", "wb") as f:
            f.write(payload)
        assert mounted.stat(f"{mount}/file.bin").st_size == 5000
        with mounted.open(f"{mount}/file.bin", "rb") as f:
            f.seek(1000)
            assert f.read(100) == payload[1000:1100]
        mounted.mkdir(f"{mount}/sub")
        mounted.rename(f"{mount}/file.bin", f"{mount}/sub/file.bin")
        assert mounted.listdir(f"{mount}/sub") == ["file.bin"]
        mounted.unlink(f"{mount}/sub/file.bin")
        mounted.rmdir(f"{mount}/sub")
        assert mounted.listdir(mount + "/") == []

    @pytest.mark.parametrize("mount", MOUNTS)
    def test_unmodified_code_cannot_tell_them_apart(self, mounted, mount):
        def legacy_app(base):
            os.mkdir(base + "/out")
            with open(base + "/out/result.txt", "w") as f:
                f.write("computed result\n")
            with open(base + "/out/result.txt") as f:
                return f.read()

        with interposed(mounted):
            assert legacy_app(mount) == "computed result\n"

    def test_cross_abstraction_rename_is_exdev(self, mounted):
        mounted.write_bytes("/shared/x", b"1")
        with pytest.raises(OSError):
            mounted.rename("/shared/x", "/safe/x")

    def test_each_mount_keeps_its_special_power(self, mounted, pool):
        # replicated: survives checksum verification with 2 copies
        mounted.write_bytes("/safe/f", b"two copies")
        replfs = mounted.resolve("/safe/f")[0]
        assert set(replfs.verify("/f").values()) == {"ok"}
        # striped: data balanced across 3 servers
        mounted.write_bytes("/fast/f", b"z" * 6 * 1024)
        stripefs = mounted.resolve("/fast/f")[0]
        assert len(stripefs._read_stub("/f").locations) == 3
        # versioned: history accumulates through the adapter
        mounted.write_bytes("/history/f", b"v1")
        mounted.write_bytes("/history/f", b"v2")
        vfs = mounted.resolve("/history/f")[0]
        assert [v.number for v in vfs.versions("/f")] == [1, 2]
        assert vfs.read_version("/f", 1) == b"v1"
