"""Integration tests: VersionedFS over live file servers.

The paper's future-work vision realized: "record many backup images ...
on-line perusal, recovery, and forensic analysis of data over time."
"""

import pytest

from repro.chirp.protocol import OpenFlags
from repro.core.metastore import ChirpMetadataStore
from repro.core.placement import RoundRobinPlacement
from repro.core.retry import RetryPolicy
from repro.core.versionfs import VersionedFS, VersionStub, Version
from repro.util import errors as E

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


@pytest.fixture()
def vfs(server_factory, pool):
    servers = [server_factory.new() for _ in range(3)]
    dir_server = server_factory.new()
    dir_client = pool.get(*dir_server.address)
    dir_client.mkdir("/vvol")
    for s in servers:
        c = pool.get(*s.address)
        c.mkdir("/tssdata")
        c.mkdir("/tssdata/vvol")
    clock = {"now": 1000.0}

    def now():
        clock["now"] += 1.0
        return clock["now"]

    fs = VersionedFS(
        ChirpMetadataStore(dir_client, "/vvol", FAST),
        pool,
        [s.address for s in servers],
        "/tssdata/vvol",
        placement=RoundRobinPlacement(seed=13),
        policy=FAST,
        now=now,
    )
    fs._test_servers = servers
    return fs


class TestVersionHistory:
    def test_each_write_session_is_a_version(self, vfs):
        vfs.write_file("/doc.txt", b"draft one")
        vfs.write_file("/doc.txt", b"draft two")
        vfs.write_file("/doc.txt", b"final")
        history = vfs.versions("/doc.txt")
        assert [v.number for v in history] == [1, 2, 3]
        assert vfs.read_file("/doc.txt") == b"final"

    def test_old_versions_readable(self, vfs):
        vfs.write_file("/doc.txt", b"v1 contents")
        vfs.write_file("/doc.txt", b"v2 contents")
        assert vfs.read_version("/doc.txt", 1) == b"v1 contents"
        assert vfs.read_version("/doc.txt", 2) == b"v2 contents"

    def test_missing_version_raises(self, vfs):
        vfs.write_file("/doc.txt", b"only one")
        with pytest.raises(E.DoesNotExistError):
            vfs.read_version("/doc.txt", 9)

    def test_timestamps_are_monotone(self, vfs):
        for i in range(3):
            vfs.write_file("/t", bytes([i]))
        stamps = [v.committed_at for v in vfs.versions("/t")]
        assert stamps == sorted(stamps)

    def test_versions_land_on_multiple_servers(self, vfs):
        for i in range(6):
            vfs.write_file("/spread", bytes([i]))
        endpoints = {v.endpoint for v in vfs.versions("/spread")}
        assert len(endpoints) == 3


class TestCopyOnWrite:
    def test_modify_without_truncate_seeds_from_latest(self, vfs):
        vfs.write_file("/log", b"0123456789")
        with vfs.open("/log", OpenFlags(read=True, write=True)) as h:
            h.pwrite(b"XX", 3)
        assert vfs.read_file("/log") == b"012XX56789"
        assert vfs.read_version("/log", 1) == b"0123456789"  # untouched

    def test_writer_invisible_until_close(self, vfs):
        vfs.write_file("/shared", b"committed")
        handle = vfs.open("/shared", OpenFlags(read=True, write=True))
        handle.pwrite(b"IN-PROGRESS", 0)
        # a reader still sees the committed version
        assert vfs.read_file("/shared") == b"committed"
        handle.close()
        assert vfs.read_file("/shared") == b"IN-PROGRESS"

    def test_abort_discards_the_session(self, vfs):
        vfs.write_file("/doc", b"keep me")
        handle = vfs.open("/doc", OpenFlags(read=True, write=True))
        handle.pwrite(b"discard", 0)
        handle.abort()
        assert vfs.read_file("/doc") == b"keep me"
        assert len(vfs.versions("/doc")) == 1

    def test_append_mode_versions_correctly(self, vfs):
        vfs.write_file("/log", b"one\n")
        with vfs.open("/log", OpenFlags(read=True, write=True, append=True)) as h:
            h.pwrite(b"two\n", h.fstat().size)
        assert vfs.read_file("/log") == b"one\ntwo\n"
        assert vfs.read_version("/log", 1) == b"one\n"

    def test_truncate_is_a_version(self, vfs):
        vfs.write_file("/f", b"0123456789")
        vfs.truncate("/f", 4)
        assert vfs.read_file("/f") == b"0123"
        assert vfs.read_version("/f", 1) == b"0123456789"


class TestRestoreAndPrune:
    def test_restore_promotes_old_version(self, vfs):
        vfs.write_file("/cfg", b"good config")
        vfs.write_file("/cfg", b"broken config")
        promoted = vfs.restore("/cfg", 1)
        assert promoted.number == 3
        assert vfs.read_file("/cfg") == b"good config"
        # forensic trail intact: the broken version is still readable
        assert vfs.read_version("/cfg", 2) == b"broken config"

    def test_prune_keeps_newest(self, vfs, pool):
        for i in range(5):
            vfs.write_file("/big", bytes([i]) * 100)
        deleted = vfs.prune("/big", keep=2)
        assert deleted == 3
        history = vfs.versions("/big")
        assert [v.number for v in history] == [4, 5]
        assert vfs.read_file("/big") == bytes([4]) * 100

    def test_prune_spares_restored_data(self, vfs):
        vfs.write_file("/f", b"original")
        vfs.write_file("/f", b"newer")
        vfs.restore("/f", 1)  # version 3 shares version 1's data file
        vfs.prune("/f", keep=1)
        assert vfs.read_file("/f") == b"original"  # data survived the prune

    def test_prune_validates_keep(self, vfs):
        vfs.write_file("/f", b"x")
        with pytest.raises(ValueError):
            vfs.prune("/f", keep=0)


class TestNamespace:
    def test_listdir_hides_machinery(self, vfs):
        vfs.write_file("/visible", b"1")
        assert vfs.listdir("/") == ["visible"]

    def test_stat_reports_latest_size(self, vfs):
        vfs.write_file("/f", b"12")
        vfs.write_file("/f", b"12345")
        assert vfs.stat("/f").size == 5

    def test_unlink_removes_every_versions_data(self, vfs, pool):
        for i in range(3):
            vfs.write_file("/gone", bytes([i]) * 50)
        history = vfs.versions("/gone")
        vfs.unlink("/gone")
        assert vfs.listdir("/") == []
        for version in history:
            assert not pool.get(*version.endpoint).exists(version.path)

    def test_rename_carries_history(self, vfs):
        vfs.write_file("/old", b"v1")
        vfs.write_file("/old", b"v2")
        vfs.rename("/old", "/new")
        assert vfs.read_version("/new", 1) == b"v1"

    def test_exclusive_create(self, vfs):
        vfs.write_file("/x", b"1")
        with pytest.raises(E.AlreadyExistsError):
            vfs.open("/x", OpenFlags(write=True, create=True, exclusive=True))

    def test_open_missing_without_create(self, vfs):
        with pytest.raises(E.DoesNotExistError):
            vfs.open("/missing", OpenFlags(write=True))


class TestStubCodec:
    def test_roundtrip(self):
        stub = VersionStub(
            (Version(1, "h", 1, "/p1", 100.0), Version(2, "h", 1, "/p2", 200.0))
        )
        assert VersionStub.decode(stub.encode()) == stub

    def test_empty_history_rejected(self):
        with pytest.raises(E.InvalidRequestError):
            VersionStub.decode(b'{"tss": "vstub", "v": 1, "versions": []}')

    def test_latest_and_get(self):
        stub = VersionStub(
            (Version(1, "h", 1, "/p1", 1.0), Version(2, "h", 1, "/p2", 2.0))
        )
        assert stub.latest.number == 2
        assert stub.get(1).path == "/p1"
        with pytest.raises(E.DoesNotExistError):
            stub.get(5)
