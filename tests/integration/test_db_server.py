"""Integration tests: the metadata database over TCP."""

import pytest

from repro.auth.methods import AuthContext, ClientCredentials
from repro.db.client import DatabaseClient
from repro.db.engine import MetadataDB
from repro.db.query import Query
from repro.db.server import DatabaseConfig, DatabaseServer
from repro.util import errors as E


@pytest.fixture()
def db_server(tmp_path, auth_context):
    db = MetadataDB(str(tmp_path / "db"), indexes=("kind",))
    config = DatabaseConfig(auth=auth_context)
    with DatabaseServer(db, config) as server:
        yield server


@pytest.fixture()
def db_client(db_server, credentials):
    c = DatabaseClient(*db_server.address, credentials=credentials)
    yield c
    c.close()


class TestRemoteOperations:
    def test_insert_get(self, db_client):
        rid = db_client.insert({"kind": "traj", "run": 5})
        assert db_client.get(rid)["run"] == 5

    def test_get_missing_returns_none(self, db_client):
        assert db_client.get("nope") is None

    def test_update(self, db_client):
        rid = db_client.insert({"v": 1})
        rec = db_client.update(rid, {"v": 2})
        assert rec["v"] == 2

    def test_update_missing_raises(self, db_client):
        with pytest.raises(E.DoesNotExistError):
            db_client.update("nope", {"v": 1})

    def test_delete(self, db_client):
        rid = db_client.insert({})
        assert db_client.delete(rid) is True
        assert db_client.delete(rid) is False

    def test_query_and_count(self, db_client):
        for i in range(6):
            db_client.insert({"kind": "a" if i < 4 else "b", "i": i})
        assert db_client.count(Query.where(kind="a")) == 4
        hits = db_client.query(Query.where(kind="b"))
        assert sorted(r["i"] for r in hits) == [4, 5]

    def test_query_limit(self, db_client):
        for i in range(10):
            db_client.insert({"kind": "x"})
        assert len(db_client.query(Query.where(kind="x"), limit=3)) == 3

    def test_rich_query_over_wire(self, db_client):
        db_client.insert({"name": "run5/t.dcd", "size": 100})
        db_client.insert({"name": "run6/t.dcd", "size": 900})
        from repro.db.query import Condition

        q = Query((Condition("name", "glob", "run5/*"),))
        q = Query.from_json_obj(q.to_json_obj())  # exercise serialization
        assert len(db_client.query(q)) == 1

    def test_durability_across_server_restart(self, tmp_path, auth_context, credentials):
        path = str(tmp_path / "db")
        db = MetadataDB(path)
        with DatabaseServer(db, DatabaseConfig(auth=auth_context)) as server:
            c = DatabaseClient(*server.address, credentials=credentials)
            rid = c.insert({"survives": True})
            c.close()
        db.close()
        db2 = MetadataDB(path)
        with DatabaseServer(db2, DatabaseConfig(auth=auth_context)) as server2:
            c2 = DatabaseClient(*server2.address, credentials=credentials)
            assert c2.get(rid)["survives"] is True
            c2.close()
        db2.close()


class TestAccessControl:
    def test_writer_allowlist(self, tmp_path, auth_context, credentials):
        """The paper's GEMS sharing model: group writes, world reads."""
        db = MetadataDB(None)
        config = DatabaseConfig(auth=auth_context, writers=("unix:pi-*",))
        with DatabaseServer(db, config) as server:
            c = DatabaseClient(*server.address, credentials=credentials)
            # our unix subject does not match unix:pi-*
            with pytest.raises(E.NotAuthorizedError):
                c.insert({"x": 1})
            # reads still fine
            assert c.query(Query()) == []
            c.close()

    def test_matching_writer_allowed(self, tmp_path, auth_context, credentials):
        import getpass

        db = MetadataDB(None)
        config = DatabaseConfig(
            auth=auth_context, writers=(f"unix:{getpass.getuser()}",)
        )
        with DatabaseServer(db, config) as server:
            c = DatabaseClient(*server.address, credentials=credentials)
            rid = c.insert({"x": 1})
            assert c.get(rid)["x"] == 1
            c.close()

    def test_reader_allowlist(self, tmp_path, auth_context, credentials):
        db = MetadataDB(None)
        config = DatabaseConfig(auth=auth_context, readers=("globus:/O=ND/*",))
        with DatabaseServer(db, config) as server:
            c = DatabaseClient(*server.address, credentials=credentials)
            with pytest.raises(E.NotAuthorizedError):
                c.query(Query())
            c.close()

    def test_malformed_command_rejected_not_fatal(self, db_client):
        stream = db_client._stream
        stream.write_line("dbcmd", "{not valid json")
        reply = stream.read_tokens()
        assert int(reply[0]) == int(E.StatusCode.INVALID_REQUEST)
        assert db_client.get("x") is None  # connection survives
