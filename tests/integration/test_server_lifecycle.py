"""Lifecycle and overload semantics of a live file server.

Covers the admission-control / graceful-drain surface end to end on
loopback:

- a connection flood against ``max_conns`` is shed with protocol-level
  ``BUSY`` lines while established sessions stay responsive;
- a per-subject in-flight cap refuses with ``BUSY`` + retry-after, the
  client honors the hint, and the circuit breaker never moves (a
  shedding server is the server *working*);
- ``drain()`` finishes acknowledged in-flight work, advertises itself,
  refuses new connections with the remaining drain window as the hint,
  and the written data survives a server restart;
- the boot janitor sweeps store staging orphans a crashed predecessor
  left behind, without touching client data.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.chirp.client import ChirpClient
from repro.chirp.server import FileServer, ServerConfig
from repro.util.errors import BusyError, StatusCode

HOST = "127.0.0.1"


def _run_in_thread(fn, *args, **kwargs):
    box = {}

    def runner():
        try:
            box["value"] = fn(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - surfaced via result()
            box["error"] = exc

    t = threading.Thread(target=runner, daemon=True)
    t.start()

    class Handle:
        @staticmethod
        def result(timeout=15.0):
            t.join(timeout)
            if t.is_alive():
                raise TimeoutError("thread did not finish")
            if "error" in box:
                raise box["error"]
            return box.get("value")

    return Handle()


def _wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class _GatedSource:
    """A file-like payload source that stalls mid-stream until released.

    The first read hands out a prefix (so the server has admitted and
    started the request), then blocks on the gate before the rest --
    holding the request in flight for as long as the test needs.
    """

    def __init__(self, payload: bytes, gate: threading.Event, split: int = 512):
        self._chunks = [payload[:split], payload[split:]]
        self.gate = gate
        self.started = threading.Event()

    def read(self, n: int = -1) -> bytes:
        if self._chunks:
            if len(self._chunks) == 1:
                assert self.gate.wait(15.0), "test never released the gate"
            chunk = self._chunks.pop(0)
            self.started.set()
            return chunk
        return b""


class TestConnectionFlood:
    def test_flood_is_shed_and_server_stays_responsive(
        self, server_factory, credentials
    ):
        server = server_factory.new(max_conns=64, busy_retry_ms=50)
        client = ChirpClient(*server.address, credentials=credentials, timeout=10.0)
        try:
            client.stat("/")  # established session, before the flood
            socks = []
            try:
                for _ in range(500):
                    s = socket.create_connection(server.address, timeout=5.0)
                    socks.append(s)
                # The accept loop sheds everything past the cap inline
                # (no worker thread, no auth); admitted sockets just sit
                # in their workers waiting for an auth line that never
                # comes.
                assert _wait_for(
                    lambda: server.shed_connections >= 500 - 64, timeout=15.0
                ), f"only {server.shed_connections} refusals"
                snap = server.snapshot()
                assert snap["connections"] <= 64
                # One shed socket, read back: a single BUSY status line
                # with the retry-after hint, then EOF.
                refused = None
                for s in socks:
                    s.settimeout(0.05)
                    try:
                        data = s.recv(4096)
                    except (socket.timeout, OSError):
                        continue
                    if data:
                        refused = data
                        break
                assert refused is not None, "no refusal line found on any socket"
                tokens = refused.decode().split()
                assert int(tokens[0]) == int(StatusCode.BUSY)
                # The reason+hint ride in one percent-escaped message token.
                assert "retry_after_ms=" in refused.decode()
                # The flood cost the server nothing it can't afford: the
                # pre-flood session still answers.
                client.stat("/")
            finally:
                for s in socks:
                    try:
                        s.close()
                    except OSError:
                        pass
        finally:
            client.close()


class TestSubjectInflightCap:
    def test_busy_retry_after_honored_without_breaker_trip(
        self, server_factory, pool
    ):
        server = server_factory.new(
            max_inflight_per_subject=1, busy_retry_ms=25
        )
        client = pool.get(*server.address)
        gate = threading.Event()
        source = _GatedSource(b"x" * 2048, gate)
        put = _run_in_thread(client.putfile, "/held", source, length=2048)
        assert source.started.wait(5.0)
        assert _wait_for(lambda: server.snapshot()["in_flight"] == 1)
        # Release the held request as soon as the server sheds the
        # second one; the client sleeps the 25 ms hint and retries into
        # a free slot.
        releaser = _run_in_thread(
            lambda: (_wait_for(lambda: server.shed_requests >= 1), gate.set())
        )
        st = client.stat("/")
        assert st is not None
        releaser.result()
        assert put.result() == 2048
        assert server.shed_requests >= 1
        # A BUSY refusal is the server working: the breaker never moved.
        health = pool.health.for_endpoint(*server.address)
        assert not health.is_open
        assert health.state == "closed"


class TestGracefulDrain:
    def test_drain_finishes_inflight_refuses_new_and_survives_restart(
        self, tmp_path, auth_context, owner_subject, credentials
    ):
        root = tmp_path / "drainroot"
        root.mkdir()
        config = ServerConfig(
            root=str(root),
            owner=owner_subject,
            auth=auth_context,
            store="local",
            drain_timeout=10.0,
        )
        server = FileServer(config).start()
        client = ChirpClient(*server.address, credentials=credentials, timeout=10.0)
        payload = os.urandom(4096)
        gate = threading.Event()
        source = _GatedSource(payload, gate)
        try:
            put = _run_in_thread(client.putfile, "/acked", source, length=len(payload))
            assert source.started.wait(5.0)
            assert _wait_for(lambda: server.snapshot()["in_flight"] == 1)

            drain = _run_in_thread(server.drain)
            assert _wait_for(lambda: server.draining)
            assert server.build_report()["draining"] is True

            # A new connection is refused at the door with the remaining
            # drain window as its retry-after hint.
            with pytest.raises(BusyError) as refusal:
                ChirpClient(*server.address, credentials=credentials, timeout=5.0)
            assert refusal.value.retry_after_s is not None
            assert refusal.value.retry_after_s > 0

            # The in-flight write completes: drain never drops an
            # admitted operation.
            gate.set()
            assert put.result() == len(payload)
            assert drain.result() is True
        finally:
            client.close()
            server.stop()

        # The drained write is durable: a fresh server over the same
        # root serves the bytes back.
        reborn = FileServer(ServerConfig(
            root=str(root),
            owner=owner_subject,
            auth=auth_context,
            store="local",
        )).start()
        try:
            fresh = ChirpClient(*reborn.address, credentials=credentials, timeout=10.0)
            try:
                assert fresh.getfile("/acked") == payload
            finally:
                fresh.close()
        finally:
            reborn.stop()

    def test_drain_with_no_inflight_returns_immediately(self, server_factory):
        server = server_factory.new()
        t0 = time.monotonic()
        assert server.drain(timeout=5.0) is True
        assert time.monotonic() - t0 < 2.0
        assert server.draining


class TestBootJanitor:
    def test_local_store_sweeps_staging_orphans(
        self, tmp_path, auth_context, owner_subject
    ):
        from repro.store.localdir import STAGING_PREFIX

        root = tmp_path / "jroot"
        root.mkdir()
        (root / "keep.txt").write_bytes(b"client data")
        (root / (STAGING_PREFIX + "orphan1")).write_bytes(b"junk")
        sub = root / "dir"
        sub.mkdir()
        (sub / (STAGING_PREFIX + "orphan2")).write_bytes(b"more junk")
        server = FileServer(ServerConfig(
            root=str(root), owner=owner_subject, auth=auth_context, store="local"
        )).start()
        try:
            assert server.janitor_swept == 2
            assert server.snapshot()["janitor_swept"] == 2
            assert not (root / (STAGING_PREFIX + "orphan1")).exists()
            assert not (sub / (STAGING_PREFIX + "orphan2")).exists()
            assert (root / "keep.txt").read_bytes() == b"client data"
        finally:
            server.stop()

    def test_cas_store_sweeps_tmp_orphans(
        self, tmp_path, auth_context, owner_subject
    ):
        root = tmp_path / "casroot"
        (root / "tmp").mkdir(parents=True)
        (root / "tmp" / "spool-leftover").write_bytes(b"crashed upload")
        server = FileServer(ServerConfig(
            root=str(root), owner=owner_subject, auth=auth_context, store="cas"
        )).start()
        try:
            assert server.janitor_swept == 1
            assert not (root / "tmp" / "spool-leftover").exists()
        finally:
            server.stop()
