"""Randomized operation sequences: DSFS vs an in-memory model.

A seeded generator drives a live DSFS (three data servers + directory
server) through hundreds of mixed operations and mirrors each one on a
plain dict model; observable state (listings, contents, errors) must
match at every step.  This catches interaction bugs no hand-written case
covers, at a fraction of the cost of hypothesis-over-sockets.
"""

import posixpath
import random

import pytest

from repro.core.dsfs import DSFS
from repro.core.placement import RoundRobinPlacement
from repro.core.retry import RetryPolicy
from repro.util import errors as E

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)

NAMES = ["a", "b", "c", "data.bin", "notes.txt"]
DIRS = ["/", "/d1", "/d2", "/d1/nested"]


class Model:
    """Ground truth: files is path->bytes; dirs is a set of paths."""

    def __init__(self):
        self.files: dict[str, bytes] = {}
        self.dirs = {"/"}

    def parent_exists(self, path: str) -> bool:
        return posixpath.dirname(path) in self.dirs


def random_path(rng) -> str:
    d = rng.choice(DIRS)
    return posixpath.join(d, rng.choice(NAMES))


@pytest.fixture()
def live(server_factory, pool):
    servers = [server_factory.new() for _ in range(3)]
    dir_server = server_factory.new()
    fs = DSFS.create(
        pool,
        *dir_server.address,
        "/vol",
        [s.address for s in servers],
        name="vol",
        placement=RoundRobinPlacement(seed=11),
        policy=FAST,
    )
    return fs


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_sequences_match_model(live, seed):
    rng = random.Random(seed)
    model = Model()

    def op_write():
        path = random_path(rng)
        if not model.parent_exists(path) or path in model.dirs:
            return  # would fail identically on both sides; skip for pace
        data = bytes([rng.randrange(256)]) * rng.randrange(1, 2000)
        live.write_file(path, data)
        model.files[path] = data

    def op_read():
        path = random_path(rng)
        if path in model.files:
            assert live.read_file(path) == model.files[path]
        elif model.parent_exists(path) and path not in model.dirs:
            with pytest.raises(E.ChirpError):
                live.read_file(path)

    def op_mkdir():
        parent = rng.choice(DIRS)
        child = posixpath.join(parent, rng.choice(["d1", "d2", "nested"]))
        if child not in DIRS:
            return
        if parent not in model.dirs:
            return
        if child in model.dirs or child in model.files:
            with pytest.raises(E.ChirpError):
                live.mkdir(child)
        else:
            live.mkdir(child)
            model.dirs.add(child)

    def op_unlink():
        path = random_path(rng)
        if path in model.files:
            live.unlink(path)
            del model.files[path]
        elif model.parent_exists(path) and path not in model.dirs:
            with pytest.raises(E.ChirpError):
                live.unlink(path)

    def op_rename():
        src = random_path(rng)
        dst = random_path(rng)
        if src not in model.files or src == dst:
            return
        if not model.parent_exists(dst) or dst in model.dirs:
            return
        live.rename(src, dst)
        model.files[dst] = model.files.pop(src)

    def op_listdir():
        d = rng.choice(DIRS)
        if d not in model.dirs:
            return
        expected = set()
        for f in model.files:
            if posixpath.dirname(f) == d:
                expected.add(posixpath.basename(f))
        for sub in model.dirs:
            if sub != "/" and posixpath.dirname(sub) == d:
                expected.add(posixpath.basename(sub))
        assert set(live.listdir(d)) == expected

    def op_stat():
        path = random_path(rng)
        if path in model.files:
            assert live.stat(path).size == len(model.files[path])

    def op_truncate():
        path = random_path(rng)
        if path not in model.files:
            return
        new_len = rng.randrange(0, len(model.files[path]) + 1)
        live.truncate(path, new_len)
        model.files[path] = model.files[path][:new_len]

    ops = [
        (op_write, 5),
        (op_read, 4),
        (op_mkdir, 2),
        (op_unlink, 2),
        (op_rename, 2),
        (op_listdir, 2),
        (op_stat, 2),
        (op_truncate, 1),
    ]
    weighted = [fn for fn, weight in ops for _ in range(weight)]

    for _ in range(200):
        rng.choice(weighted)()

    # final full-state comparison
    for path, data in model.files.items():
        assert live.read_file(path) == data
    for d in model.dirs:
        op = set(live.listdir(d))
        expected = {
            posixpath.basename(p)
            for p in list(model.files) + [x for x in model.dirs if x != "/"]
            if posixpath.dirname(p) == d
        }
        assert op == expected
