"""Integration tests: the Chirp file server over real TCP."""

import io
import threading

import pytest

from repro.chirp.client import ChirpClient
from repro.chirp.protocol import OpenFlags
from repro.util import errors as E


class TestFileIO:
    def test_open_write_read_close(self, client):
        fd = client.open("/f.txt", "wct")
        assert client.pwrite(fd, b"tactical", 0) == 8
        client.close_fd(fd)
        fd = client.open("/f.txt", "r")
        assert client.pread(fd, 100, 0) == b"tactical"
        client.close_fd(fd)

    def test_pread_beyond_eof_returns_empty(self, client):
        client.putfile("/f", b"abc")
        fd = client.open("/f", "r")
        assert client.pread(fd, 10, 100) == b""
        client.close_fd(fd)

    def test_client_owns_offsets(self, client):
        """pread/pwrite carry explicit offsets; no server-side position."""
        fd = client.open("/f", "wc")
        client.pwrite(fd, b"AA", 4)
        client.pwrite(fd, b"BB", 0)
        client.close_fd(fd)
        assert client.getfile("/f") == b"BB\x00\x00AA"

    def test_append_flag(self, client):
        client.putfile("/log", b"one\n")
        fd = client.open("/log", "wa")
        client.pwrite(fd, b"two\n", 0)
        client.close_fd(fd)
        assert client.getfile("/log") == b"one\ntwo\n"

    def test_large_payload_roundtrip(self, client):
        blob = bytes(range(256)) * 20000  # ~5 MB
        client.putfile("/big.bin", blob)
        assert client.stat("/big.bin").size == len(blob)
        assert client.getfile("/big.bin") == blob

    def test_getfile_streams_to_sink(self, client):
        client.putfile("/f", b"x" * 100000)
        sink = io.BytesIO()
        n = client.getfile("/f", sink)
        assert n == 100000
        assert sink.getvalue() == b"x" * 100000

    def test_putfile_streams_from_file(self, client, tmp_path):
        src = tmp_path / "src.bin"
        src.write_bytes(b"y" * 50000)
        with open(str(src), "rb") as f:
            assert client.putfile("/dst.bin", f) == 50000
        assert client.stat("/dst.bin").size == 50000

    def test_denied_putfile_keeps_stream_in_sync(self, server_factory):
        from repro.auth.methods import ClientCredentials

        server = server_factory.new()
        # a hostname visitor with no rights cannot putfile, but the
        # connection must stay usable afterwards (payload drained)
        c = ChirpClient(
            *server.address, credentials=ClientCredentials(methods=("hostname",))
        )
        with pytest.raises(E.NotAuthorizedError):
            c.putfile("/denied.bin", b"z" * 10000)
        assert c.whoami() == "hostname:localhost"  # stream still in sync
        c.close()

    def test_midwrite_store_failure_keeps_stream_in_sync(
        self, server_factory, credentials
    ):
        """A store fault *partway through* the payload must drain the
        unread tail -- including bytes already sitting in the receive
        buffer -- or the leftover payload reparses as the next request
        line and the connection is lost."""
        import os

        from repro.store import DiskFaultScript
        from repro.store.faulty import ENOSPC

        from repro.util.wire import pack_line

        kind = os.environ.get("TSS_TEST_STORE", "local")
        server = server_factory.new(store=f"faulty+{kind}")
        # max_conns=1: every op below rides the connection we poke raw
        c = ChirpClient(*server.address, credentials=credentials, max_conns=1)
        assert c.whoami()
        server.backend.store.plan.script(
            DiskFaultScript(op="pwrite", action=ENOSPC)
        )
        # One send for line + payload so the server's first recv buffers
        # the payload alongside the request -- the exact shape that used
        # to leak buffered bytes past the error drain.
        payload = b"x" * 256
        stream = c._stream
        stream.write(pack_line("putfile", "/torn.bin", 0o644, len(payload)) + payload)
        status = int(stream.read_tokens()[0])
        assert status == int(E.StatusCode.NO_SPACE)
        assert c.whoami()  # stream still in sync
        server.backend.try_recover(force=True)
        assert c.putfile("/after.bin", b"y" * 100) == 100
        c.close()

    def test_fsync_and_truncate(self, client):
        fd = client.open("/f", "wc")
        client.pwrite(fd, b"0123456789", 0)
        client.fsync(fd)
        client.ftruncate(fd, 5)
        assert client.fstat(fd).size == 5
        client.close_fd(fd)
        client.truncate("/f", 2)
        assert client.stat("/f").size == 2

    def test_exclusive_create_over_wire(self, client):
        fd = client.open("/x", "wcx")
        client.close_fd(fd)
        with pytest.raises(E.AlreadyExistsError):
            client.open("/x", "wcx")


class TestNamespaceOps:
    def test_mkdir_getdir_rmdir(self, client):
        client.mkdir("/d")
        client.putfile("/d/a", b"1")
        assert client.getdir("/") == ["d"]
        assert client.getdir("/d") == ["a"]
        client.unlink("/d/a")
        client.rmdir("/d")
        assert client.getdir("/") == []

    def test_rename(self, client):
        client.putfile("/a", b"1")
        client.rename("/a", "/b")
        assert client.exists("/b") and not client.exists("/a")

    def test_stat_lstat_access(self, client):
        client.putfile("/f", b"abc")
        assert client.stat("/f").size == 3
        assert client.lstat("/f").size == 3
        client.access("/f", "rl")

    def test_utime(self, client):
        client.putfile("/f", b"1")
        client.utime("/f", 111, 222)
        st = client.stat("/f")
        assert (st.atime, st.mtime) == (111, 222)

    def test_checksum_rpc(self, client):
        from repro.util.checksum import data_checksum

        client.putfile("/f", b"check me")
        assert client.checksum("/f") == data_checksum(b"check me")

    def test_statfs(self, client):
        fs = client.statfs()
        assert fs.total_bytes > 0

    def test_whoami(self, client):
        import getpass

        assert client.whoami() == f"unix:{getpass.getuser()}"

    def test_errors_cross_the_wire_typed(self, client):
        with pytest.raises(E.DoesNotExistError):
            client.stat("/missing")
        with pytest.raises(E.DoesNotExistError):
            client.getfile("/missing")
        client.mkdir("/d")
        client.putfile("/d/f", b"1")
        with pytest.raises(E.NotEmptyError):
            client.rmdir("/d")
        with pytest.raises(E.IsADirectoryError_):
            client.open("/d", "r")
        with pytest.raises(E.BadFileDescriptorError):
            client.pwrite(999, b"x", 0)

    def test_unicode_and_space_paths(self, client):
        client.putfile("/häl lo wörld.txt", b"data")
        assert "häl lo wörld.txt" in client.getdir("/")
        assert client.getfile("/häl lo wörld.txt") == b"data"


class TestAclOverWire:
    def test_getacl_setacl(self, client, owner_subject):
        acl = client.getacl("/")
        assert acl.rights_for(owner_subject).flags == frozenset("rwldav")
        client.setacl("/", "hostname:*.nd.edu", "rwl")
        again = client.getacl("/")
        assert again.check("hostname:x.nd.edu", "r")

    def test_acl_removal(self, client):
        client.setacl("/", "unix:guest", "rl")
        client.setacl("/", "unix:guest", "none")
        assert not client.getacl("/").check("unix:guest", "r")

    def test_two_subjects_different_rights(self, server_factory, credentials):
        """Full multi-user flow over the wire: owner grants, visitor uses."""
        server = server_factory.new()
        owner = ChirpClient(*server.address, credentials=credentials)
        owner.setacl("/", "hostname:localhost", "v(rwl)")
        from repro.auth.methods import ClientCredentials

        visitor = ChirpClient(
            *server.address,
            credentials=ClientCredentials(methods=("hostname",)),
        )
        assert visitor.whoami() == "hostname:localhost"
        visitor.mkdir("/visitors")
        visitor.putfile("/visitors/mine.txt", b"private")
        # the reserved directory excludes even other visitors' rights;
        # the owner still sees everything
        assert owner.getfile("/visitors/mine.txt") == b"private"
        with pytest.raises(E.NotAuthorizedError):
            visitor.setacl("/visitors", "unix:other", "rwl")  # no A right
        owner.close()
        visitor.close()


class TestConnectionSemantics:
    def test_disconnect_frees_open_files(self, file_server, credentials):
        """Paper: on disconnect the server closes all the client's files."""
        c1 = ChirpClient(*file_server.address, credentials=credentials)
        fd = c1.open("/f", "wc")
        c1.pwrite(fd, b"x", 0)
        c1.close()

        # A second client sees the file intact and the server healthy.
        c2 = ChirpClient(*file_server.address, credentials=credentials)
        assert c2.stat("/f").size == 1
        c2.close()

    def test_fd_invalid_after_reconnect(self, file_server, credentials):
        c = ChirpClient(*file_server.address, credentials=credentials)
        fd = c.open("/f", "wc")
        gen = c.generation
        c.connect()  # new connection: old fd must be gone
        assert c.generation == gen + 1
        with pytest.raises(E.BadFileDescriptorError):
            c.pread(fd, 10, 0)
        c.close()

    def test_concurrent_clients(self, file_server, credentials):
        """Several clients hammering one server stay isolated."""
        errors = []

        def worker(i):
            try:
                c = ChirpClient(*file_server.address, credentials=credentials)
                for j in range(20):
                    c.putfile(f"/w{i}-{j}", bytes([i]) * 100)
                for j in range(20):
                    assert c.getfile(f"/w{i}-{j}") == bytes([i]) * 100
                c.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert errors == []

    def test_per_connection_fd_limit(self, server_factory, credentials):
        server = server_factory.new(max_open_files=4)
        c = ChirpClient(*server.address, credentials=credentials)
        fds = [c.open(f"/f{i}", "wc") for i in range(4)]
        with pytest.raises(E.TooManyOpenError):
            c.open("/f5", "wc")
        for fd in fds:
            c.close_fd(fd)
        c.open("/f5", "wc")  # room again
        c.close()

    def test_unknown_verb_is_rejected_not_fatal(self, client):
        stream = client._stream
        stream.write_line("frobnicate", "/x")
        reply = stream.read_tokens()
        assert int(reply[0]) == int(E.StatusCode.INVALID_REQUEST)
        assert client.whoami()  # connection still fine

    def test_quota_enforced_over_wire(self, server_factory, credentials):
        server = server_factory.new(quota_bytes=5000)
        c = ChirpClient(*server.address, credentials=credentials)
        c.putfile("/ok", b"x" * 1000)
        with pytest.raises(E.NoSpaceError):
            c.putfile("/toobig", b"x" * 10000)
        # connection survives the drained payload
        assert c.statfs().total_bytes == 5000
        c.close()
