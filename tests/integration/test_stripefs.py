"""Integration tests: StripedFS over live file servers."""

import pytest

from repro.chirp.protocol import OpenFlags
from repro.core.metastore import ChirpMetadataStore
from repro.core.retry import RetryPolicy
from repro.core.stripefs import StripedFS, StripeStub
from repro.util import errors as E

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)
STRIPE = 1024  # small stripes so modest files cross many boundaries


@pytest.fixture()
def stripefs(server_factory, pool):
    servers = [server_factory.new() for _ in range(3)]
    dir_server = server_factory.new()
    dir_client = pool.get(*dir_server.address)
    dir_client.mkdir("/svol")
    for s in servers:
        c = pool.get(*s.address)
        c.mkdir("/tssdata")
        c.mkdir("/tssdata/svol")
    fs = StripedFS(
        ChirpMetadataStore(dir_client, "/svol", FAST),
        pool,
        [s.address for s in servers],
        "/tssdata/svol",
        stripe_size=STRIPE,
        policy=FAST,
    )
    fs._test_servers = servers
    return fs


def pattern(n: int) -> bytes:
    return bytes(i % 251 for i in range(n))


class TestStripedIO:
    def test_roundtrip_multiple_stripes(self, stripefs):
        data = pattern(10 * STRIPE + 123)
        stripefs.write_file("/big", data)
        assert stripefs.read_file("/big") == data

    def test_data_actually_spreads(self, stripefs, pool):
        data = pattern(9 * STRIPE)
        stripefs.write_file("/spread", data)
        stub = stripefs._read_stub("/spread")
        assert len(stub.locations) == 3
        sizes = []
        for host, port, path in stub.locations:
            sizes.append(pool.get(host, port).stat(path).size)
        assert sizes == [3 * STRIPE] * 3  # perfectly balanced

    def test_logical_size_from_stripe_sizes(self, stripefs):
        data = pattern(5 * STRIPE + 17)
        stripefs.write_file("/sized", data)
        assert stripefs.stat("/sized").size == len(data)

    def test_random_access_reads(self, stripefs):
        data = pattern(7 * STRIPE)
        stripefs.write_file("/ra", data)
        with stripefs.open("/ra", OpenFlags(read=True)) as h:
            for offset, length in [
                (0, 10),
                (STRIPE - 5, 10),  # spans a stripe boundary
                (3 * STRIPE, 2 * STRIPE),  # multiple whole stripes
                (len(data) - 4, 100),  # crosses EOF
            ]:
                assert h.pread(length, offset) == data[offset : offset + length]

    def test_in_place_overwrite_across_boundary(self, stripefs):
        data = bytearray(pattern(4 * STRIPE))
        stripefs.write_file("/ow", bytes(data))
        with stripefs.open("/ow", OpenFlags(read=True, write=True)) as h:
            patch_at = STRIPE - 8
            patch = b"P" * 16  # straddles stripes 0 and 1
            h.pwrite(patch, patch_at)
        data[patch_at : patch_at + 16] = patch
        assert stripefs.read_file("/ow") == bytes(data)

    def test_truncate_shrinks_logically(self, stripefs):
        data = pattern(6 * STRIPE)
        stripefs.write_file("/tr", data)
        new_len = 2 * STRIPE + 100
        stripefs.truncate("/tr", new_len)
        assert stripefs.stat("/tr").size == new_len
        assert stripefs.read_file("/tr") == data[:new_len]

    def test_handle_ftruncate(self, stripefs):
        data = pattern(4 * STRIPE)
        stripefs.write_file("/ftr", data)
        with stripefs.open("/ftr", OpenFlags(read=True, write=True)) as h:
            h.ftruncate(STRIPE + 1)
            assert h.fstat().size == STRIPE + 1

    def test_sparse_hole_reads_short(self, stripefs):
        """The documented limitation: a logical hole inside an unwritten
        stripe tail reads as EOF, not zeros."""
        with stripefs.open(
            "/sparse", OpenFlags(read=True, write=True, create=True)
        ) as h:
            h.pwrite(b"Z", 2 * STRIPE)  # bytes 0..2*STRIPE-1 never written
            got = h.pread(2 * STRIPE + 1, 0)
        assert len(got) < 2 * STRIPE + 1

    def test_namespace_ops(self, stripefs):
        stripefs.mkdir("/d")
        stripefs.write_file("/d/f", pattern(100))
        assert stripefs.listdir("/d") == ["f"]
        stripefs.rename("/d/f", "/d/g")
        assert stripefs.read_file("/d/g") == pattern(100)
        stripefs.unlink("/d/g")
        stripefs.rmdir("/d")

    def test_unlink_removes_all_stripes(self, stripefs, pool):
        stripefs.write_file("/gone", pattern(5 * STRIPE))
        locations = stripefs._read_stub("/gone").locations
        stripefs.unlink("/gone")
        for host, port, path in locations:
            assert not pool.get(host, port).exists(path)

    def test_exclusive_create(self, stripefs):
        stripefs.write_file("/x", b"1")
        with pytest.raises(E.AlreadyExistsError):
            stripefs.open("/x", OpenFlags(write=True, create=True, exclusive=True))

    def test_losing_any_stripe_server_loses_the_file(self, stripefs, pool):
        """Striping's documented trade-off: no failure coherence within a
        file -- any stripe server down means the file is unavailable."""
        stripefs.write_file("/fragile", pattern(6 * STRIPE))
        host, port, _ = stripefs._read_stub("/fragile").locations[1]
        victim = next(s for s in stripefs._test_servers if s.address == (host, port))
        victim.stop()
        pool.invalidate(host, port)
        with pytest.raises(E.DisconnectedError):
            stripefs.read_file("/fragile")
        # but the namespace survives, and other files too
        assert "fragile" in stripefs.listdir("/")

    def test_stub_codec(self):
        stub = StripeStub(4096, (("a", 1, "/p0"), ("b", 2, "/p1")))
        assert StripeStub.decode(stub.encode()) == stub
        with pytest.raises(E.InvalidRequestError):
            StripeStub.decode(b'{"tss": "stub"}')

    def test_config_validation(self, stripefs, pool):
        with pytest.raises(ValueError):
            StripedFS(stripefs.meta, pool, stripefs.servers, "/d", stripe_size=0)
        with pytest.raises(ValueError):
            StripedFS(stripefs.meta, pool, stripefs.servers, "/d", stripes=7)
