"""Crash safety of the DSFS 3-step creation protocol, wire faults included.

The paper's claim: "If a client should fail while creating a file, it
may leave a stub file without any corresponding data file.  This has the
harmless effect of a dangling link: the file is visible in the
namespace, but attempting to open it results in a 'file not found'
error."  These tests sever the wire at each step boundary with the
fault proxy and check exactly that -- no half-created file is ever
*openable*, and every crash residue is distinguishable and cleanable.
"""

from __future__ import annotations

import pytest

from repro.chirp.protocol import OpenFlags
from repro.core.metastore import ChirpMetadataStore
from repro.core.placement import RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.core.retry import RetryPolicy
from repro.core.stubfs import StubFilesystem
from repro.core.stubs import Stub, unique_data_name
from repro.transport.faults import FaultyListener
from repro.transport.health import BreakerPolicy, HealthRegistry
from repro.util.errors import DisconnectedError, DoesNotExistError

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)

READ = OpenFlags(read=True)
CREATE = OpenFlags(write=True, create=True)


class CrashRig:
    """A one-data-server stub filesystem with both wires proxied.

    ``meta_proxy`` sits in front of the directory server and
    ``data_proxy`` in front of the data server, so a test can sever
    either leg of the 3-step creation protocol at will.
    """

    def __init__(self, server_factory, credentials):
        self.dir_server = server_factory.new()
        self.data_server = server_factory.new()
        self.meta_proxy = FaultyListener(self.dir_server.address).start()
        self.data_proxy = FaultyListener(self.data_server.address).start()
        # A lenient breaker: these tests repeatedly kill and restore the
        # same endpoints, and quarantine is not what's under test here.
        self.pool = ClientPool(
            credentials,
            timeout=5.0,
            health=HealthRegistry(BreakerPolicy(failure_threshold=1000)),
        )
        dir_client = self.pool.get(*self.dir_server.address)
        dir_client.mkdir("/vol")
        data_client = self.pool.get(*self.data_server.address)
        data_client.mkdir("/tssdata")
        data_client.mkdir("/tssdata/vol")
        self.data_client = data_client
        meta_client = self.pool.get(*self.meta_proxy.address)
        self.fs = StubFilesystem(
            ChirpMetadataStore(meta_client, "/vol", FAST),
            self.pool,
            [self.data_proxy.address],
            "/tssdata/vol",
            placement=RoundRobinPlacement(seed=1),
            policy=FAST,
        )

    def data_files(self) -> list[str]:
        """The data server's export, seen directly (no proxy)."""
        return self.data_client.getdir("/tssdata/vol")

    def close(self):
        self.pool.close()
        self.meta_proxy.stop()
        self.data_proxy.stop()


@pytest.fixture()
def rig(server_factory, credentials):
    r = CrashRig(server_factory, credentials)
    yield r
    r.close()


class TestCrashBeforeStub:
    def test_nothing_visible_anywhere(self, rig):
        """Die between step 1 (local) and step 2: zero remote state."""
        rig.meta_proxy.break_now()
        with pytest.raises(DisconnectedError):
            rig.fs.open("/doomed", CREATE)
        rig.meta_proxy.restore()
        assert rig.fs.listdir("/") == []
        with pytest.raises(DoesNotExistError):
            rig.fs.open("/doomed", READ)
        assert rig.data_files() == []


class TestCrashAfterStub:
    """Die between step 2 and step 3: the dangling-stub window."""

    def plant_dangling_stub(self, rig, path="/ghost") -> Stub:
        # Perform step 2 exactly as _create_or_open would, then "crash":
        # the stub names a data file that was never exclusively created.
        host, port = rig.data_proxy.address
        stub = Stub(host, port, rig.fs.data_dir + "/" + unique_data_name())
        assert rig.fs.meta.create_exclusive(path, stub.encode())
        return stub

    def test_open_says_file_not_found(self, rig):
        self.plant_dangling_stub(rig)
        with pytest.raises(DoesNotExistError, match="dangling stub"):
            rig.fs.open("/ghost", READ)

    def test_stat_says_file_not_found(self, rig):
        self.plant_dangling_stub(rig)
        with pytest.raises(DoesNotExistError, match="dangling stub"):
            rig.fs.stat("/ghost")

    def test_visible_in_namespace_like_a_dangling_link(self, rig):
        stub = self.plant_dangling_stub(rig)
        assert rig.fs.listdir("/") == ["ghost"]
        # lstat sees the stub itself, as lstat on a dangling symlink does.
        assert rig.fs.lstat("/ghost").size == len(stub.encode())

    def test_unlink_cleans_the_residue(self, rig):
        self.plant_dangling_stub(rig)
        rig.fs.unlink("/ghost")
        assert rig.fs.listdir("/") == []
        # The name is fully reusable afterwards.
        handle = rig.fs.open("/ghost", CREATE)
        handle.pwrite(b"reborn", 0)
        handle.close()
        handle = rig.fs.open("/ghost", READ)
        try:
            assert handle.pread(16, 0) == b"reborn"
        finally:
            handle.close()


class TestCrashDuringDataCreate:
    def test_surviving_client_rolls_back_the_stub(self, rig):
        """Step 3 fails on the wire: cleanup must remove the step-2 stub."""
        rig.data_proxy.break_now()
        with pytest.raises(DisconnectedError):
            rig.fs.open("/halfway", CREATE)
        # No half-created file is visible in the namespace or on disk.
        assert rig.fs.listdir("/") == []
        with pytest.raises(DoesNotExistError):
            rig.fs.lstat("/halfway")
        assert rig.data_files() == []
        # Once the wire heals, the same name creates cleanly.
        rig.data_proxy.restore()
        handle = rig.fs.open("/halfway", CREATE)
        handle.pwrite(b"whole", 0)
        handle.close()
        handle = rig.fs.open("/halfway", READ)
        try:
            assert handle.pread(16, 0) == b"whole"
        finally:
            handle.close()
        assert len(rig.data_files()) == 1

    def test_wire_cut_mid_protocol_leaves_no_openable_file(self, rig):
        """Sever the data wire after a few bytes instead of refusing it."""
        from repro.transport.faults import RESET, FaultPlan, FaultScript

        # The first data connection dies mid-auth; the creation protocol
        # must roll back step 2 before surfacing the error.
        rig.data_proxy.plan = FaultPlan(
            default=FaultScript(cut_after_out=8, action=RESET)
        )
        with pytest.raises(DisconnectedError):
            rig.fs.open("/cut", CREATE)
        assert rig.fs.listdir("/") == []
        assert rig.data_files() == []
