"""Keeper chaos soak: self-healing under server loss and injected faults.

The acceptance scenario for the keeper: a replicated DSDB whose keeper
runs an incremental, journaled anti-entropy loop while a server is
killed mid-soak and another sits behind a seeded fault proxy.  The
replication factor must return to target within a bounded number of
passes; a simulated keeper crash mid-copy must leave the journal able to
recover or garbage-collect every in-flight copy (zero half-written
replicas counted live); and a rerun with the same seed must replay the
identical fault sequence (the proxy's event log is the witness).

Set ``KEEPER_SOAK_ARTIFACTS`` to a directory to get the keeper journal
and fault event log copied there (CI uploads them on failure).
"""

from __future__ import annotations

import json
import os
import random
import shutil

import pytest

from repro.core.dsdb import DSDB, live_replicas
from repro.core.placement import RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.core.stubs import unique_data_name
from repro.db.engine import MetadataDB
from repro.gems import FixedCountPolicy, Keeper, KeeperConfig
from repro.gems.recovery import rescan_servers
from repro.store import DiskFaultPlan
from repro.transport.deadline import Deadline
from repro.transport.faults import STALL, FaultPlan, FaultScript, FaultyListener
from repro.transport.metrics import MetricsRegistry
from repro.util.clock import ManualClock

KEEPER_SEED = 20260805

# Fixed names and sizes so wire byte-offsets -- and therefore the fault
# proxy's trigger points -- are reproducible run to run.
PAYLOADS = {f"soak/f{i}": bytes([97 + i]) * (700 * (i + 1)) for i in range(6)}


def make_dsdb(pool, addresses, seed=2):
    db = MetadataDB(None, indexes=("tss_kind", "name"))
    return DSDB(
        db,
        pool,
        addresses,
        volume="gems",
        placement=RoundRobinPlacement(seed=seed),
    )


def make_keeper(dsdb, state_dir, *, copies=2, catalog=None, clock=None, **cfg):
    cfg.setdefault("scan_batch", 16)
    cfg.setdefault("max_repairs_per_tick", 16)
    return Keeper(
        dsdb,
        FixedCountPolicy(copies),
        KeeperConfig(state_dir=str(state_dir), **cfg),
        catalog=catalog,
        clock=clock or ManualClock(),
    )


def assert_replication_restored(dsdb, dead, copies=2):
    """Every record holds ``copies`` live replicas, none on ``dead``."""
    for record in dsdb.find():
        live = live_replicas(record)
        endpoints = {(r["host"], r["port"]) for r in live}
        assert len(live) >= copies, f"{record['name']}: only {len(live)} live"
        assert dead not in endpoints, f"{record['name']}: still counts {dead}"


def assert_no_half_written_live(dsdb):
    """The journal invariant: every live replica verifies clean."""
    for record in dsdb.find():
        for rep in live_replicas(record):
            assert dsdb.verify_replica(record, rep) == "ok", (
                f"{record['name']}: half-written replica counted live: {rep}"
            )


def save_artifacts(keeper, event_log=None, scrub_reports=None):
    out = os.environ.get("KEEPER_SOAK_ARTIFACTS")
    if not out:
        return
    os.makedirs(out, exist_ok=True)
    shutil.copy(keeper.journal.path, os.path.join(out, "keeper.journal"))
    with open(os.path.join(out, "keeper.snapshot.json"), "w") as f:
        json.dump(keeper.snapshot(), f, indent=2, sort_keys=True)
    if event_log is not None:
        with open(os.path.join(out, "fault-events.log"), "w") as f:
            f.write("\n".join(event_log) + "\n")
    if scrub_reports is not None:
        with open(os.path.join(out, "scrub-reports.json"), "w") as f:
            json.dump(scrub_reports, f, indent=2, sort_keys=True)


@pytest.fixture()
def world(server_factory, pool, tmp_path):
    servers = [server_factory.new() for _ in range(4)]
    dsdb = make_dsdb(pool, [s.address for s in servers])
    dsdb._test_servers = servers
    return dsdb, tmp_path / "keeper-state"


class TestKeeperSoak:
    def test_replication_restored_after_server_killed_mid_soak(
        self, world, pool
    ):
        dsdb, state_dir = world
        for name, data in PAYLOADS.items():
            dsdb.ingest(name, data, replicas=2)
        keeper = make_keeper(dsdb, state_dir)

        # A clean pass on a healthy deployment repairs nothing.
        keeper.run_passes(1)
        assert keeper.snapshot()["repairs_committed"] == 0

        # Kill one server mid-soak -- pick the one holding the most
        # replicas, the worst case for the repair budget.
        by_server = {}
        for record in dsdb.find():
            for rep in record["replicas"]:
                by_server.setdefault((rep["host"], rep["port"]), []).append(rep)
        dead = max(by_server, key=lambda ep: len(by_server[ep]))
        victim = next(s for s in dsdb._test_servers if s.address == dead)
        victim.stop()
        pool.invalidate(*dead)

        # Bounded convergence: the keeper may burn a pass discovering
        # the dead server as a copy target, but failure deprioritization
        # must steer it to healthy ground well within this budget.
        for _ in range(6):
            keeper.run_passes(1)
            try:
                assert_replication_restored(dsdb, dead)
                break
            except AssertionError:
                continue
        try:
            assert_replication_restored(dsdb, dead)
            snap = keeper.snapshot()
            assert snap["dropped"] >= len(by_server[dead])
            assert snap["repairs_committed"] >= len(by_server[dead])
            assert keeper.journal.in_flight() == []
            assert_no_half_written_live(dsdb)
        finally:
            save_artifacts(keeper)

    def test_incremental_scan_resumes_across_keeper_restart(self, world):
        dsdb, state_dir = world
        for name, data in PAYLOADS.items():
            dsdb.ingest(name, data, replicas=1)
        ids = sorted(r["id"] for r in dsdb.find())

        first = make_keeper(dsdb, state_dir, copies=1, scan_batch=4)
        tick = first.tick()
        assert tick.scanned == 4
        assert first.cursor == ids[3]
        first.journal.close()  # simulated shutdown mid-pass

        # A reborn keeper picks up at the persisted cursor: the next
        # batch is the *remaining* records, not the first four again.
        second = make_keeper(dsdb, state_dir, copies=1, scan_batch=4)
        assert second.cursor == ids[3]
        tick = second.tick()
        assert tick.scanned == 2
        assert second.tick().wrapped
        assert second.snapshot()["passes_completed"] == 1


class TestJournalCrashRecovery:
    def test_replay_recovers_or_collects_every_in_flight_copy(
        self, world, pool
    ):
        dsdb, state_dir = world
        recs = [
            dsdb.ingest(name, data, replicas=1)
            for name, data in list(PAYLOADS.items())[:3]
        ]
        keeper = make_keeper(dsdb, state_dir, copies=1)

        def spare_target(record):
            occupied = {(r["host"], r["port"]) for r in record["replicas"]}
            return next(ep for ep in dsdb.servers if ep not in occupied)

        # Crash A: copy finished, crash before attach+commit.  The bytes
        # are good; only the bookkeeping was lost.
        rec_a = recs[0]
        target_a = spare_target(rec_a)
        path_a = dsdb.data_dir + "/" + unique_data_name()
        rep_a = dsdb.copy_replica(rec_a, target_a, path=path_a)
        keeper.journal.intent(rec_a["id"], rep_a)

        # Crash B: copy torn mid-write -- garbage at the intent path.
        rec_b = recs[1]
        target_b = spare_target(rec_b)
        path_b = dsdb.data_dir + "/" + unique_data_name()
        dsdb._ensure_dir(target_b)
        pool.get(*target_b).putfile(path_b, b"torn half-written garbage")
        rep_b = {"host": target_b[0], "port": target_b[1], "path": path_b,
                 "state": "ok"}
        keeper.journal.intent(rec_b["id"], rep_b)

        # Crash C: intent written, crash before any byte moved.
        rec_c = recs[2]
        target_c = spare_target(rec_c)
        path_c = dsdb.data_dir + "/" + unique_data_name()
        keeper.journal.intent(
            rec_c["id"],
            {"host": target_c[0], "port": target_c[1], "path": path_c,
             "state": "ok"},
        )
        keeper.journal.close()  # the "crash"

        reborn = make_keeper(dsdb, state_dir, copies=1)
        snap = reborn.snapshot()
        assert snap["journal_recovered"] == 1
        assert snap["journal_garbage_collected"] == 2
        assert reborn.journal.in_flight() == []

        # A: attached and committed -- the finished copy was not wasted.
        live_a = live_replicas(dsdb.get(rec_a["id"]))
        assert (target_a[0], target_a[1]) in {
            (r["host"], r["port"]) for r in live_a
        }

        # B: never attached, and the torn bytes are gone from the disk.
        assert len(dsdb.get(rec_b["id"])["replicas"]) == 1
        server_b = next(
            s for s in dsdb._test_servers if s.address == target_b
        )
        assert not os.path.exists(
            os.path.join(server_b.backend.root, path_b.lstrip("/"))
        )

        # C: nothing to collect; record untouched.
        assert len(dsdb.get(rec_c["id"])["replicas"]) == 1

        # The invariant the journal exists to provide.
        assert_no_half_written_live(dsdb)

    def test_recovery_is_idempotent(self, world):
        dsdb, state_dir = world
        rec = dsdb.ingest("soak/idem", b"x" * 512, replicas=1)
        keeper = make_keeper(dsdb, state_dir, copies=1)
        target = next(
            ep for ep in dsdb.servers
            if ep != (rec["replicas"][0]["host"], rec["replicas"][0]["port"])
        )
        path = dsdb.data_dir + "/" + unique_data_name()
        rep = dsdb.copy_replica(rec, target, path=path)
        dsdb.attach_replica(rec, rep)  # crash *after* attach, before commit
        keeper.journal.intent(rec["id"], rep)
        keeper.journal.close()

        reborn = make_keeper(dsdb, state_dir, copies=1)
        assert reborn.snapshot()["journal_recovered"] == 1
        # Already attached: recovery must not attach a duplicate.
        record = dsdb.get(rec["id"])
        assert len(record["replicas"]) == 2
        assert reborn.journal.in_flight() == []


class TestCatalogDrivenDrain:
    def test_suspect_server_is_proactively_drained(self, world):
        dsdb, state_dir = world

        class StubCatalog:
            reports = []

            def try_discover(self):
                return self.reports

        clock = ManualClock()
        lifetime = 300.0
        catalog = StubCatalog()
        keeper = make_keeper(
            dsdb, state_dir, copies=1, catalog=catalog, clock=clock,
            catalog_lifetime=lifetime,
        )
        for name, data in PAYLOADS.items():
            dsdb.ingest(name, data, replicas=1)

        # The catalog keeps reporting every server but one.
        from repro.catalog.report import ServerReport

        suspect = dsdb.servers[0]
        catalog.reports = [
            ServerReport(type="chirp", name=f"{h}:{p}", owner="unix:x",
                         host=h, port=p)
            for h, p in dsdb.servers[1:]
        ]
        keeper.run_passes(1)
        assert keeper.suspects == set()  # grace period

        clock.advance(lifetime + 1)
        keeper.run_passes(2)
        assert keeper.suspects == {suspect}

        # Every record that lived on the suspect now also lives off it,
        # before the server has actually failed.
        for record in dsdb.find():
            endpoints = {(r["host"], r["port"]) for r in live_replicas(record)}
            assert endpoints - {suspect}, (
                f"{record['name']} still lives only on the suspect server"
            )
        assert keeper.snapshot()["proactive_copies"] >= 1
        assert_no_half_written_live(dsdb)

    def test_keeper_counters_surface_in_metrics(
        self, server_factory, credentials, tmp_path
    ):
        servers = [server_factory.new() for _ in range(2)]
        metered = ClientPool(
            credentials, timeout=10.0, metrics=MetricsRegistry()
        )
        try:
            dsdb = make_dsdb(metered, [s.address for s in servers])
            keeper = make_keeper(dsdb, tmp_path / "ks", copies=1)
            dsdb.ingest("m/x", b"data", replicas=1)
            keeper.run_passes(1)
            section = metered.metrics.snapshot()["keeper"]
            assert section["ticks"] >= 1
            assert section["records_scanned"] == 1
            assert section["passes_completed"] == 1
        finally:
            metered.close()


@pytest.mark.chaos
class TestSeededKeeperChaos:
    def chaos_soak(self, seed, server_factory, credentials, state_dir):
        """One soak: 4 servers -- one proxied+jittery, one killed mid-run."""
        servers = [server_factory.new() for _ in range(4)]
        proxy = FaultyListener(servers[1].address).start()
        addresses = [servers[0].address, proxy.address,
                     servers[2].address, servers[3].address]

        pool = ClientPool(credentials, timeout=5.0, metrics=MetricsRegistry())
        try:
            dsdb = make_dsdb(pool, addresses, seed=7)
            dsdb._test_servers = servers
            for name, data in PAYLOADS.items():
                dsdb.ingest(name, data, replicas=2)

            # Mid-soak: server 0 dies hard; the proxied server turns
            # jittery with a seeded truncation mix.  Latency stays zero
            # so the fault sequence depends only on byte offsets.
            # Evicting the proxy's warm connections forces the keeper
            # onto fresh -- faulted -- ones.
            servers[0].stop()
            pool.invalidate(*servers[0].address)
            proxy.plan = FaultPlan.chaos(
                seed,
                reset_rate=0.1,
                truncate_rate=0.25,
                latency=(0.0, 0.0),
                cut_range=(256, 4096),
            )
            pool.evict(*proxy.address)

            keeper = make_keeper(dsdb, state_dir)
            try:
                for _ in range(8):
                    keeper.run_passes(1)
                    try:
                        assert_replication_restored(dsdb, servers[0].address)
                        break
                    except AssertionError:
                        continue
                assert_replication_restored(dsdb, servers[0].address)
                assert keeper.journal.in_flight() == []
                assert_no_half_written_live(dsdb)
                snapshot = keeper.snapshot()
            finally:
                save_artifacts(keeper, event_log=proxy.event_log())
        finally:
            pool.close()
            proxy.stop()
        return {"log": proxy.event_log(), "snapshot": snapshot}

    def test_soak_heals_and_replays_identically(
        self, server_factory, credentials, tmp_path
    ):
        first = self.chaos_soak(
            KEEPER_SEED, server_factory, credentials, tmp_path / "k1"
        )
        second = self.chaos_soak(
            KEEPER_SEED, server_factory, credentials, tmp_path / "k2"
        )
        # Same seed, same workload: the proxy drew the identical fault
        # script for every connection, in order.
        assert first["log"] == second["log"]


@pytest.mark.chaos
class TestSeededBitrotSoak:
    """At-rest corruption under a live keeper, across store kinds.

    One replica of every record is silently rotted on disk (seeded byte
    flips through :meth:`FaultyStore.rot_at_rest`).  The stack must then
    hold three promises at once: no client read ever returns corrupted
    bytes (checksum-verified reads fail over and mark the replica
    damaged), the keeper restores the replication factor by dropping and
    re-replicating every corrupted replica (for CAS stores the damage is
    surfaced by ``scrub(quarantine=True)`` and fed through
    ``ingest_scrub_report``), and a rerun with the same seed replays the
    identical per-server fault event logs.
    """

    COPIES = 2

    def bitrot_soak(self, seed, server_factory, credentials, state_dir):
        kind = os.environ.get("TSS_TEST_STORE", "local")
        servers = [
            server_factory.new(store=f"faulty+{kind}") for _ in range(4)
        ]
        # Reseed each injector by server *index* (never by port: ports
        # are ephemeral) and log by content digest only, so the event
        # logs are comparable across reruns.
        for i, server in enumerate(servers):
            server.backend.store.plan = DiskFaultPlan(
                seed=seed + i, log_paths=False
            )
        pool = ClientPool(credentials, timeout=5.0, metrics=MetricsRegistry())
        try:
            dsdb = make_dsdb(pool, [s.address for s in servers], seed=7)
            for name, data in PAYLOADS.items():
                dsdb.ingest(name, data, replicas=self.COPIES)

            # Seeded corruption: one replica of every record rots on
            # disk, chosen from the record's (placement-ordered, hence
            # reproducible) replica list.
            by_address = {s.address: s for s in servers}
            rng = random.Random(seed)
            rotted = []
            for record in sorted(dsdb.find(), key=lambda r: r["name"]):
                rep = rng.choice(record["replicas"])
                victim = by_address[(rep["host"], rep["port"])]
                victim.backend.store.rot_at_rest(rep["path"])
                rotted.append(record["name"])
            assert len(rotted) == len(PAYLOADS)

            keeper = make_keeper(dsdb, state_dir, copies=self.COPIES)
            scrub_reports = {}
            try:
                if servers[0].backend.store.supports_cas:
                    # The O(1) checksum RPC cannot see at-rest rot on a
                    # CAS server; the byte-level scrub can.  Quarantine
                    # and feed the reports to the keeper as repair work.
                    marked = 0
                    for i, server in enumerate(servers):
                        report = server.backend.store.scrub(quarantine=True)
                        scrub_reports[f"server{i}"] = report
                        marked += keeper.ingest_scrub_report(
                            server.address, report
                        )
                    assert marked == len(rotted)

                # Corrupted bytes never reach a client: verified reads
                # serve pristine data and mark bad replicas damaged.
                for name, payload in PAYLOADS.items():
                    record = dsdb.find(name=name)[0]
                    assert dsdb.fetch(record, verify=True) == payload

                for _ in range(8):
                    keeper.run_passes(1)
                    try:
                        self.assert_pristine_everywhere(dsdb, pool)
                        break
                    except AssertionError:
                        continue
                self.assert_pristine_everywhere(dsdb, pool)
                assert keeper.journal.in_flight() == []
                # and still: no read returns corrupted bytes
                for name, payload in PAYLOADS.items():
                    record = dsdb.find(name=name)[0]
                    assert dsdb.fetch(record, verify=True) == payload
                snapshot = keeper.snapshot()
                assert (
                    snapshot["repairs_committed"]
                    + snapshot["scrub_replicas_marked"]
                ) >= 1
            finally:
                save_artifacts(
                    keeper,
                    event_log=[
                        event
                        for s in servers
                        for event in s.backend.store.plan.event_log()
                    ],
                    scrub_reports=scrub_reports or None,
                )
            logs = tuple(
                s.backend.store.plan.event_log() for s in servers
            )
        finally:
            pool.close()
        return {"logs": logs, "snapshot": snapshot, "rotted": rotted}

    def assert_pristine_everywhere(self, dsdb, pool):
        """RF is back and every live replica serves verified bytes."""
        for record in dsdb.find():
            live = live_replicas(record)
            assert len(live) >= self.COPIES, (
                f"{record['name']}: only {len(live)} live replicas"
            )
            for rep in live:
                client = pool.get(rep["host"], rep["port"])
                data = client.getfile_verified(
                    rep["path"], record["checksum"]
                )
                assert data == PAYLOADS[record["name"]]

    def test_bitrot_soak_heals_and_replays_identically(
        self, server_factory, credentials, tmp_path
    ):
        first = self.bitrot_soak(
            KEEPER_SEED, server_factory, credentials, tmp_path / "b1"
        )
        second = self.bitrot_soak(
            KEEPER_SEED, server_factory, credentials, tmp_path / "b2"
        )
        # Corruption actually happened, on reproducible servers...
        assert sum(len(log) for log in first["logs"]) == len(PAYLOADS)
        # ...and the same seed replayed the identical fault event logs.
        assert first["logs"] == second["logs"]


class TestRescanDeadline:
    def test_stalled_server_cannot_stall_the_rebuild(
        self, server_factory, credentials
    ):
        servers = [server_factory.new() for _ in range(2)]
        # Server 1 hides behind a proxy that goes silent immediately:
        # connections open, then nothing ever comes back -- the failure
        # mode that used to hang rescan_servers forever.  The stalled
        # dial is bounded by the pool's connect timeout; every RPC after
        # it is bounded by the deadline -- together they cap what a
        # silent server can cost the rebuild.
        proxy = FaultyListener(servers[1].address).start()
        pool = ClientPool(credentials, timeout=5.0, metrics=MetricsRegistry())
        try:
            dsdb = make_dsdb(pool, [servers[0].address, proxy.address])
            dsdb.ingest("r/a", b"alpha" * 100, replicas=2)

            proxy.plan = FaultPlan(
                default=FaultScript(cut_after_out=0, action=STALL)
            )
            pool.evict(*proxy.address)  # force fresh (stalled) connections

            deadline = Deadline(10.0)
            report = rescan_servers(
                pool, dsdb.servers, dsdb.volume, deadline=deadline
            )
            # The healthy server was fully scanned; the stalled one was
            # abandoned -- unreachable if the dial itself hung, timed out
            # if it got far enough for an RPC to hit the deadline.
            assert report.servers_timed_out + report.servers_unreachable >= 1
            assert report.replicas_found >= 1
        finally:
            pool.close()
            proxy.stop()

    def test_expired_deadline_short_circuits(self, world):
        dsdb, _ = world
        dsdb.ingest("r/b", b"beta", replicas=1)
        report = rescan_servers(
            dsdb.pool, dsdb.servers, dsdb.volume, deadline=Deadline(0.0)
        )
        assert report.deadline_expired
        assert report.servers_scanned == 0
