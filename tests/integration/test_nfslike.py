"""Integration tests: the NFS-like baseline server.

The baseline must be *semantically* correct (so comparisons are fair) and
must exhibit the protocol structure the paper blames for NFS's numbers:
per-component lookups and fixed-size request-response blocks.
"""

import pytest

from repro.baselines.nfslike import NFS_BLOCK_SIZE, NfsLikeClient, NfsLikeServer
from repro.util import errors as E


@pytest.fixture()
def nfs(tmp_path):
    root = tmp_path / "export"
    root.mkdir()
    with NfsLikeServer(str(root)) as server:
        client = NfsLikeClient(*server.address)
        yield client, server, root
        client.close()


class TestSemantics:
    def test_write_read_roundtrip(self, nfs):
        client, _, _ = nfs
        blob = bytes(range(256)) * 100
        client.write_file("/f.bin", blob)
        assert client.read_file("/f.bin") == blob

    def test_nested_paths(self, nfs):
        client, _, _ = nfs
        client.mkdir("/a")
        client.mkdir("/a/b")
        client.write_file("/a/b/deep.txt", b"deep")
        assert client.read_file("/a/b/deep.txt") == b"deep"
        assert client.getattr("/a/b/deep.txt").size == 4

    def test_readdir(self, nfs):
        client, _, _ = nfs
        client.write_file("/one", b"1")
        client.write_file("/two", b"2")
        assert client.readdir("/") == ["one", "two"]

    def test_remove_and_rmdir(self, nfs):
        client, _, _ = nfs
        client.mkdir("/d")
        client.write_file("/d/f", b"1")
        client.remove("/d/f")
        client.rmdir("/d")
        assert client.readdir("/") == []

    def test_rename(self, nfs):
        client, _, _ = nfs
        client.mkdir("/dst")
        client.write_file("/f", b"1")
        client.rename("/f", "/dst/g")
        assert client.read_file("/dst/g") == b"1"

    def test_lookup_missing_is_enoent(self, nfs):
        client, _, _ = nfs
        with pytest.raises(E.DoesNotExistError):
            client.getattr("/missing")

    def test_stale_handle_after_remove(self, nfs):
        client, _, _ = nfs
        client.write_file("/f", b"1")
        fh = client.lookup("/f")
        client.remove("/f")
        with pytest.raises((E.StaleHandleError, E.DoesNotExistError)):
            client.read_block(fh, 0)

    def test_export_confinement(self, nfs):
        client, _, root = nfs
        client.write_file("/../escape", b"x")  # lexically clamped
        assert (root / "escape").exists()


class TestProtocolShape:
    def test_read_block_is_capped(self, nfs):
        client, _, _ = nfs
        client.write_file("/big", b"z" * (3 * NFS_BLOCK_SIZE))
        fh = client.lookup("/big")
        data = client.read_block(fh, 0, count=10 * NFS_BLOCK_SIZE)
        assert len(data) == NFS_BLOCK_SIZE  # server enforces the cap

    def test_oversized_write_block_rejected(self, nfs):
        client, _, _ = nfs
        fh = client.create("/f")
        with pytest.raises(E.InvalidRequestError):
            client.write_block(fh, 0, b"x" * (NFS_BLOCK_SIZE + 1))

    def test_whole_file_transfer_uses_many_blocks(self, nfs):
        """10 blocks of data must arrive bit-exact through 4 KB RPCs."""
        client, _, _ = nfs
        blob = bytes(range(256)) * (10 * NFS_BLOCK_SIZE // 256)
        client.write_file("/blocks", blob)
        assert client.read_file("/blocks") == blob

    def test_handles_are_stable_across_connections(self, nfs, tmp_path):
        client, server, _ = nfs
        client.write_file("/f", b"persistent")
        fh = client.lookup("/f")
        second = NfsLikeClient(*server.address)
        assert second.read_block(fh, 0) == b"persistent"  # stateless server
        second.close()
