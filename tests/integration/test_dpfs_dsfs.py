"""Integration tests: DPFS and DSFS over live file servers.

The two abstractions share the stub engine, so shared behaviours are
tested once against both via parametrized fixtures; the differences
(private vs shared metadata, sharing between clients) get their own
tests.
"""

import pytest

from repro.chirp.protocol import OpenFlags
from repro.core.dpfs import DPFS
from repro.core.dsfs import DSFS
from repro.core.placement import RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.core.retry import RetryPolicy
from repro.util import errors as E

FAST = RetryPolicy(max_attempts=4, initial_delay=0.05, multiplier=1.5)


@pytest.fixture()
def cluster(server_factory, pool):
    """Three data servers plus one directory server."""
    servers = [server_factory.new() for _ in range(3)]
    dir_server = server_factory.new()
    return servers, dir_server, pool


def make_dpfs(cluster, tmp_path):
    servers, _dir, pool = cluster
    return DPFS.create(
        str(tmp_path / "meta"),
        pool,
        [s.address for s in servers],
        name="vol",
        placement=RoundRobinPlacement(seed=1),
        policy=FAST,
    )


def make_dsfs(cluster, tmp_path):
    servers, dir_server, pool = cluster
    return DSFS.create(
        pool,
        *dir_server.address,
        "/vol",
        [s.address for s in servers],
        name="vol",
        placement=RoundRobinPlacement(seed=1),
        policy=FAST,
    )


@pytest.fixture(params=["dpfs", "dsfs"])
def stubfs(request, cluster, tmp_path):
    maker = make_dpfs if request.param == "dpfs" else make_dsfs
    return maker(cluster, tmp_path)


class TestCommonSemantics:
    def test_write_read_roundtrip(self, stubfs):
        stubfs.write_file("/paper.txt", b"the content")
        assert stubfs.read_file("/paper.txt") == b"the content"

    def test_large_file(self, stubfs):
        blob = bytes(range(256)) * 4000
        stubfs.write_file("/big", blob)
        assert stubfs.read_file("/big") == blob
        assert stubfs.stat("/big").size == len(blob)

    def test_directories_and_rename(self, stubfs):
        stubfs.mkdir("/figures")
        stubfs.write_file("/figures/b.eps", b"EPS")
        stubfs.write_file("/paper.txt", b"txt")
        assert sorted(stubfs.listdir("/")) == ["figures", "paper.txt"]
        # name-only rename: data file does not move
        before = stubfs.stub_for("/paper.txt")
        stubfs.rename("/paper.txt", "/figures/paper.txt")
        after = stubfs.stub_for("/figures/paper.txt")
        assert (before.host, before.port, before.path) == (
            after.host,
            after.port,
            after.path,
        )

    def test_data_spreads_across_servers(self, stubfs):
        for i in range(9):
            stubfs.write_file(f"/f{i}", bytes([i]))
        endpoints = {stubfs.stub_for(f"/f{i}").endpoint for i in range(9)}
        assert len(endpoints) == 3  # round robin hits every server

    def test_exclusive_create(self, stubfs):
        stubfs.write_file("/x", b"1")
        with pytest.raises(E.AlreadyExistsError):
            stubfs.open("/x", OpenFlags(write=True, create=True, exclusive=True))

    def test_plain_create_overwrites(self, stubfs):
        stubfs.write_file("/x", b"first")
        stubfs.write_file("/x", b"second!")
        assert stubfs.read_file("/x") == b"second!"

    def test_unlink_removes_data_then_stub(self, stubfs):
        stubfs.write_file("/x", b"1")
        stub = stubfs.stub_for("/x")
        stubfs.unlink("/x")
        assert stubfs.listdir("/") == []
        client = stubfs.pool.get(*stub.endpoint)
        assert not client.exists(stub.path)  # data really gone

    def test_open_missing_file(self, stubfs):
        with pytest.raises(E.DoesNotExistError):
            stubfs.read_file("/missing")

    def test_stat_reports_data_size(self, stubfs):
        stubfs.write_file("/x", b"x" * 12345)
        assert stubfs.stat("/x").size == 12345
        # lstat sees the (tiny) stub entry itself
        assert stubfs.lstat("/x").size < 4096

    def test_truncate_and_utime_reach_data(self, stubfs):
        stubfs.write_file("/x", b"0123456789")
        stubfs.truncate("/x", 4)
        assert stubfs.stat("/x").size == 4
        stubfs.utime("/x", 100, 200)
        assert stubfs.stat("/x").mtime == 200

    def test_statfs_aggregates_servers(self, stubfs):
        fs = stubfs.statfs()
        one = stubfs.pool.get(*stubfs.servers[0]).statfs()
        assert fs.total_bytes >= 2 * one.total_bytes  # 3 servers summed

    def test_rmdir(self, stubfs):
        stubfs.mkdir("/d")
        stubfs.rmdir("/d")
        assert stubfs.listdir("/") == []

    def test_volume_file_is_hidden_and_guarded(self, stubfs):
        assert ".tssvolume" not in stubfs.listdir("/")
        with pytest.raises(E.NotAuthorizedError):
            stubfs.read_file("/.tssvolume")
        with pytest.raises(E.NotAuthorizedError):
            stubfs.unlink("/.tssvolume")


class TestDanglingStubs:
    def test_dangling_stub_open_says_not_found(self, stubfs):
        """Crash between creation steps 2 and 3 leaves a stub with no
        data; open must say 'file not found' (paper, section 5)."""
        stubfs.write_file("/x", b"1")
        stub = stubfs.stub_for("/x")
        stubfs.pool.get(*stub.endpoint).unlink(stub.path)  # simulate crash
        with pytest.raises(E.DoesNotExistError):
            stubfs.read_file("/x")
        with pytest.raises(E.DoesNotExistError):
            stubfs.stat("/x")

    def test_dangling_stub_still_listed_and_lstattable(self, stubfs):
        stubfs.write_file("/x", b"1")
        stub = stubfs.stub_for("/x")
        stubfs.pool.get(*stub.endpoint).unlink(stub.path)
        assert stubfs.listdir("/") == ["x"]
        assert stubfs.lstat("/x").size > 0

    def test_dangling_stub_easily_deleted(self, stubfs):
        stubfs.write_file("/x", b"1")
        stub = stubfs.stub_for("/x")
        stubfs.pool.get(*stub.endpoint).unlink(stub.path)
        stubfs.unlink("/x")  # paper: "easily deleted by a user"
        assert stubfs.listdir("/") == []


class TestFailureCoherence:
    def test_lost_server_takes_out_only_its_files(self, cluster, tmp_path, server_factory):
        servers, _dir, pool = cluster
        fs = make_dsfs(cluster, tmp_path)
        for i in range(9):
            fs.write_file(f"/f{i}", bytes([i]) * 10)
        victim = servers[0]
        dead_endpoint = victim.address
        on_victim = [
            f"/f{i}" for i in range(9)
            if fs.stub_for(f"/f{i}").endpoint == dead_endpoint
        ]
        survivors = [p for p in (f"/f{i}" for i in range(9)) if p not in on_victim]
        assert on_victim and survivors
        victim.stop()
        pool.invalidate(*dead_endpoint)
        # namespace stays navigable
        assert len(fs.listdir("/")) == 9
        # surviving files still read fine
        for path in survivors:
            assert len(fs.read_file(path)) == 10
        # lost files fail with a connection error, not corruption
        with pytest.raises(E.DisconnectedError):
            fs.read_file(on_victim[0])

    def test_force_unlink_with_dead_server(self, cluster, tmp_path):
        servers, _dir, pool = cluster
        fs = make_dsfs(cluster, tmp_path)
        fs.write_file("/doomed", b"x")
        endpoint = fs.stub_for("/doomed").endpoint
        server = next(s for s in servers if s.address == endpoint)
        server.stop()
        pool.invalidate(*endpoint)
        with pytest.raises(E.DisconnectedError):
            fs.unlink("/doomed")
        fs.unlink("/doomed", force=True)  # the documented escape hatch
        assert fs.listdir("/") == []

    def test_new_files_avoid_dead_server(self, cluster, tmp_path):
        servers, _dir, pool = cluster
        fs = make_dsfs(cluster, tmp_path)
        victim = servers[1]
        victim.stop()
        pool.invalidate(*victim.address)
        for i in range(6):
            fs.write_file(f"/n{i}", b"1")  # placement retries elsewhere
        endpoints = {fs.stub_for(f"/n{i}").endpoint for i in range(6)}
        assert victim.address not in endpoints


class TestSharing:
    def test_two_clients_share_a_dsfs(self, cluster, tmp_path, credentials):
        """The defining DSFS property: multiple users, one namespace."""
        servers, dir_server, pool = cluster
        fs_a = make_dsfs(cluster, tmp_path)
        pool_b = ClientPool(credentials)
        fs_b = DSFS.open_volume(pool_b, *dir_server.address, "/vol", policy=FAST)
        fs_a.write_file("/from-a.txt", b"written by a")
        assert fs_b.read_file("/from-a.txt") == b"written by a"
        fs_b.write_file("/from-b.txt", b"written by b")
        assert sorted(fs_a.listdir("/")) == ["from-a.txt", "from-b.txt"]
        pool_b.close()

    def test_exclusive_create_races_resolve_once(self, cluster, tmp_path, credentials):
        """Two clients racing to create the same name: exactly one wins
        (the stub's exclusive create arbitrates)."""
        _servers, dir_server, pool = cluster
        fs_a = make_dsfs(cluster, tmp_path)
        pool_b = ClientPool(credentials)
        fs_b = DSFS.open_volume(pool_b, *dir_server.address, "/vol", policy=FAST)
        flags = OpenFlags(write=True, create=True, exclusive=True)
        h = fs_a.open("/contested", flags)
        h.pwrite(b"a was here", 0)
        h.close()
        with pytest.raises(E.AlreadyExistsError):
            fs_b.open("/contested", flags)
        assert fs_b.read_file("/contested") == b"a was here"
        pool_b.close()

    def test_dpfs_reopen_volume(self, cluster, tmp_path, credentials):
        fs = make_dpfs(cluster, tmp_path)
        fs.write_file("/persists.txt", b"here")
        pool2 = ClientPool(credentials)
        again = DPFS.open_volume(str(tmp_path / "meta"), pool2, policy=FAST)
        assert again.read_file("/persists.txt") == b"here"
        assert again.servers == fs.servers
        pool2.close()

    def test_add_server_grows_volume(self, cluster, tmp_path, server_factory):
        fs = make_dsfs(cluster, tmp_path)
        new_server = server_factory.new()
        fs.add_server(*new_server.address)
        assert tuple(new_server.address) in {tuple(s) for s in fs.servers}
        # config persisted: a fresh open sees the new server
        again = DSFS.open_volume(fs.pool, *fs.dir_endpoint, "/vol", policy=FAST)
        assert tuple(new_server.address) in {tuple(s) for s in again.servers}
