"""Integration tests: the ReplicatedFS extension and GEMS DB recovery.

Both are capabilities the paper names but leaves open: "filesystems that
transparently ... replicate" (section 10 future work) and "the database
could even be recovered automatically by rescanning the existing file
data" (section 5).
"""

import os

import pytest

from repro.chirp.protocol import OpenFlags
from repro.core.dsdb import DSDB
from repro.core.metastore import ChirpMetadataStore
from repro.core.placement import RoundRobinPlacement
from repro.core.replfs import MultiStub, ReplicatedFS
from repro.core.retry import RetryPolicy
from repro.db.engine import MetadataDB
from repro.db.query import Query
from repro.gems.recovery import rebuild_database, rescan_servers
from repro.util import errors as E

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


@pytest.fixture()
def replfs(server_factory, pool):
    servers = [server_factory.new() for _ in range(4)]
    dir_server = server_factory.new()
    dir_client = pool.get(*dir_server.address)
    dir_client.mkdir("/rvol")
    for s in servers:
        c = pool.get(*s.address)
        c.mkdir("/tssdata")
        c.mkdir("/tssdata/rvol")
    meta = ChirpMetadataStore(dir_client, "/rvol", FAST)
    fs = ReplicatedFS(
        meta,
        pool,
        [s.address for s in servers],
        "/tssdata/rvol",
        copies=2,
        placement=RoundRobinPlacement(seed=3),
        policy=FAST,
    )
    fs._test_servers = servers
    return fs


class TestMultiStub:
    def test_roundtrip(self):
        stub = MultiStub((("a", 1, "/p1"), ("b", 2, "/p2")))
        assert MultiStub.decode(stub.encode()) == stub

    def test_empty_locations_rejected(self):
        with pytest.raises(E.InvalidRequestError):
            MultiStub.decode(b'{"tss": "rstub", "v": 1, "locations": []}')

    def test_wrong_kind_rejected(self):
        from repro.core.stubs import Stub

        with pytest.raises(E.InvalidRequestError):
            MultiStub.decode(Stub("h", 1, "/p").encode())


class TestReplicatedFS:
    def test_write_lands_on_n_servers(self, replfs, pool):
        replfs.write_file("/f", b"replicated payload")
        stub = replfs._read_stub("/f")
        assert len(stub.locations) == 2
        assert len({(h, p) for h, p, _ in stub.locations}) == 2
        for host, port, path in stub.locations:
            assert pool.get(host, port).getfile(path) == b"replicated payload"

    def test_read_survives_one_server_loss(self, replfs, pool):
        replfs.write_file("/f", b"durable")
        host, port, _ = replfs._read_stub("/f").locations[0]
        victim = next(s for s in replfs._test_servers if s.address == (host, port))
        victim.stop()
        pool.invalidate(host, port)
        assert replfs.read_file("/f") == b"durable"
        assert replfs.stat("/f").size == 7

    def test_open_handle_degrades_but_survives(self, replfs, pool):
        replfs.write_file("/f", b"0123456789")
        handle = replfs.open("/f", OpenFlags(read=True))
        assert handle.width == 2 and not handle.degraded
        host, port, _ = replfs._read_stub("/f").locations[0]
        victim = next(s for s in replfs._test_servers if s.address == (host, port))
        victim.stop()
        pool.invalidate(host, port)
        assert handle.pread(4, 0) == b"0123"
        assert handle.degraded
        handle.close()

    def test_write_fans_out_to_all_replicas(self, replfs, pool):
        handle = replfs.open("/f", OpenFlags(write=True, create=True))
        handle.pwrite(b"both copies", 0)
        handle.close()
        for host, port, path in replfs._read_stub("/f").locations:
            assert pool.get(host, port).getfile(path) == b"both copies"

    def test_verify_detects_divergence(self, replfs, pool):
        replfs.write_file("/f", b"agree agree")
        host, port, path = replfs._read_stub("/f").locations[1]
        pool.get(host, port).putfile(path, b"i diverged!")
        health = replfs.verify("/f")
        states = sorted(health.values())
        assert states == ["diverged", "ok"]

    def test_heal_restores_replica_count(self, replfs, pool):
        replfs.write_file("/f", b"precious")
        host, port, path = replfs._read_stub("/f").locations[0]
        pool.get(host, port).unlink(path)  # lose one replica's data
        assert set(replfs.verify("/f").values()) == {"ok", "missing"}
        added = replfs.heal("/f")
        assert added == 1
        assert set(replfs.verify("/f").values()) == {"ok"}
        assert replfs.read_file("/f") == b"precious"

    def test_heal_replaces_diverged_copy(self, replfs, pool):
        replfs.write_file("/f", b"the true contents!")
        stub = replfs._read_stub("/f")
        # corrupt one replica; majority (here: tie broken by count order)
        # is resolved against the intact pair after a third copy exists
        host, port, path = stub.locations[1]
        pool.get(host, port).putfile(path, b"corrupted contents")
        # make the intact copy the majority by healing from scratch:
        # first mark the diverged one by unlinking it entirely
        pool.get(host, port).unlink(path)
        replfs.heal("/f")
        health = replfs.verify("/f")
        assert set(health.values()) == {"ok"}
        assert replfs.read_file("/f") == b"the true contents!"

    def test_read_verified_survives_diverged_replica(self, replfs, pool):
        replfs.write_file("/f", b"agree agree")
        host, port, path = replfs._read_stub("/f").locations[1]
        pool.get(host, port).putfile(path, b"i diverged!")
        # the diverged replica advertises a non-majority digest and is
        # filtered before any byte is fetched
        assert replfs.read_verified("/f") == b"agree agree"

    def test_read_verified_catches_a_lying_replica(
        self, server_factory, pool
    ):
        """A replica that advertises the majority digest but serves
        corrupt bytes (the shape of at-rest bitrot behind an O(1)
        checksum) is caught by hashing the fetched bytes, marked
        suspect, and failed over."""
        from repro.store import DiskFaultScript
        from repro.store.faulty import BITROT

        kind = os.environ.get("TSS_TEST_STORE", "local")
        servers = [
            server_factory.new(store=f"faulty+{kind}") for _ in range(3)
        ]
        dir_server = server_factory.new()
        dir_client = pool.get(*dir_server.address)
        dir_client.mkdir("/rv")
        for s in servers:
            c = pool.get(*s.address)
            c.mkdir("/tssdata")
            c.mkdir("/tssdata/rv")
        meta = ChirpMetadataStore(dir_client, "/rv", FAST)
        fs = ReplicatedFS(
            meta, pool, [s.address for s in servers], "/tssdata/rv",
            copies=2, placement=RoundRobinPlacement(seed=3), policy=FAST,
        )
        payload = b"verified payload " * 50
        fs.write_file("/f", payload)
        host, port, path = fs._read_stub("/f").locations[0]
        victim = next(s for s in servers if s.address == (host, port))
        # rot in flight on the preferred replica's next read of this
        # file; its *advertised* checksum stays the majority digest
        victim.backend.store.plan.script(
            DiskFaultScript(op="pread", action=BITROT, path=path)
        )
        assert fs.read_verified("/f") == payload
        assert fs.suspects == [f"{host}:{port}"]

    def test_unlink_removes_every_replica(self, replfs, pool):
        replfs.write_file("/f", b"x")
        locations = replfs._read_stub("/f").locations
        replfs.unlink("/f")
        assert replfs.listdir("/") == []
        for host, port, path in locations:
            assert not pool.get(host, port).exists(path)

    def test_namespace_ops(self, replfs):
        replfs.mkdir("/d")
        replfs.write_file("/d/f", b"1")
        assert replfs.listdir("/d") == ["f"]
        replfs.rename("/d/f", "/d/g")
        assert replfs.read_file("/d/g") == b"1"
        replfs.unlink("/d/g")
        replfs.rmdir("/d")

    def test_statfs_divides_by_copies(self, replfs, pool):
        one = pool.get(*replfs.servers[0]).statfs()
        fs = replfs.statfs()
        assert fs.total_bytes <= (one.total_bytes * 4) // 2 + 1

    def test_exclusive_create(self, replfs):
        replfs.write_file("/x", b"1")
        with pytest.raises(E.AlreadyExistsError):
            replfs.open("/x", OpenFlags(write=True, create=True, exclusive=True))

    def test_config_validation(self, replfs, pool):
        with pytest.raises(ValueError):
            ReplicatedFS(replfs.meta, pool, replfs.servers[:1], "/d", copies=2)
        with pytest.raises(ValueError):
            ReplicatedFS(replfs.meta, pool, replfs.servers, "/d", copies=0)


class TestDatabaseRecovery:
    @pytest.fixture()
    def populated(self, server_factory, pool):
        servers = [server_factory.new() for _ in range(3)]
        db = MetadataDB(None, indexes=("tss_kind", "checksum"))
        dsdb = DSDB(
            db, pool, [s.address for s in servers],
            volume="gems", placement=RoundRobinPlacement(seed=4),
        )
        records = [
            dsdb.ingest(f"run{i}/out.dat", bytes([i]) * 2000, {"run": i}, replicas=2)
            for i in range(5)
        ]
        return dsdb, records, servers

    def test_rescan_finds_every_replica(self, populated, pool):
        dsdb, records, _servers = populated
        report = rescan_servers(pool, dsdb.servers, "gems")
        assert report.servers_scanned == 3
        assert report.replicas_found == 10  # 5 files x 2 copies
        assert len(report.by_checksum) == 5
        for replicas in report.by_checksum.values():
            assert len(replicas) == 2

    def test_rebuild_after_total_database_loss(self, populated, pool):
        dsdb, records, _servers = populated
        originals = {r["checksum"]: r for r in records}
        # catastrophe: the database is gone
        fresh_db = MetadataDB(None, indexes=("tss_kind", "checksum"))
        recovered_dsdb = DSDB(fresh_db, pool, dsdb.servers, volume="gems")
        report = rebuild_database(recovered_dsdb)
        assert report.records_rebuilt == 5
        # every file fetches, checksum-verified, from the rebuilt records
        for rec in recovered_dsdb.query(Query.where(tss_kind="file")):
            data = recovered_dsdb.fetch(rec["id"], verify=True)
            assert rec["checksum"] in originals
            assert len(data) == originals[rec["checksum"]]["size"]
            assert rec["recovered"] is True
            assert len(rec["replicas"]) == 2

    def test_rebuild_is_idempotent(self, populated, pool):
        dsdb, _records, _servers = populated
        first = rebuild_database(dsdb)
        assert first.records_rebuilt == 0  # records already known
        again = rebuild_database(dsdb)
        assert again.records_rebuilt == 0
        assert dsdb.db.count(Query.where(tss_kind="file")) == 5

    def test_rebuild_with_unreachable_server(self, populated, pool):
        dsdb, _records, servers = populated
        victim = servers[0]
        victim.stop()
        pool.invalidate(*victim.address)
        fresh_db = MetadataDB(None, indexes=("tss_kind", "checksum"))
        recovered = DSDB(fresh_db, pool, dsdb.servers, volume="gems")
        report = rebuild_database(recovered)
        assert report.servers_unreachable == 1
        # with 2 copies on 3 servers, every file still has >=1 replica on
        # the two surviving servers (pigeonhole), so nothing is lost
        assert report.records_rebuilt == 5
        for rec in recovered.query(Query.where(tss_kind="file")):
            assert recovered.fetch(rec["id"], verify=True)


class TestThreeCopyMajority:
    @pytest.fixture()
    def replfs3(self, server_factory, pool):
        servers = [server_factory.new() for _ in range(4)]
        dir_server = server_factory.new()
        dir_client = pool.get(*dir_server.address)
        dir_client.mkdir("/r3")
        for s in servers:
            c = pool.get(*s.address)
            c.mkdir("/tssdata")
            c.mkdir("/tssdata/r3")
        meta = ChirpMetadataStore(dir_client, "/r3", FAST)
        return ReplicatedFS(
            meta, pool, [s.address for s in servers], "/tssdata/r3",
            copies=3, placement=RoundRobinPlacement(seed=5), policy=FAST,
        )

    @pytest.mark.parametrize("corrupt_index", [0, 1, 2])
    def test_majority_identifies_truth_wherever_corruption_lands(
        self, replfs3, pool, corrupt_index
    ):
        """With three copies, a single corrupted replica is outvoted no
        matter which position it holds -- including the first, which a
        two-copy tie-break would have wrongly trusted."""
        replfs3.write_file("/f", b"the truth" * 10)
        loc = replfs3._read_stub("/f").locations[corrupt_index]
        pool.get(loc[0], loc[1]).putfile(loc[2], b"a big lie" * 10)
        health = replfs3.verify("/f")
        assert health[loc] == "diverged"
        assert sorted(health.values()) == ["diverged", "ok", "ok"]
        replfs3.heal("/f")
        assert set(replfs3.verify("/f").values()) == {"ok"}
        assert replfs3.read_file("/f") == b"the truth" * 10
