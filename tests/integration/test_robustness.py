"""Robustness: hostile and malformed input must never take a server down.

A TSS file server is exposed to "the world at large" by design, so the
protocol loop has to shrug off garbage: random bytes, torn requests,
wrong argument counts, huge lines, abrupt disconnects mid-payload.
"""

import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chirp.client import ChirpClient
from repro.util import errors as E
from repro.util.wire import LineStream


def raw_connect(server):
    sock = socket.create_connection(server.address, timeout=5)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def server_is_healthy(server, credentials) -> bool:
    c = ChirpClient(*server.address, credentials=credentials)
    try:
        return c.whoami().startswith(("unix:", "hostname:"))
    finally:
        c.close()


class TestHostileClients:
    def test_random_garbage_preauth(self, file_server, credentials):
        for payload in (b"\x00" * 100, b"GET / HTTP/1.1\r\n\r\n", b"\xff\xfe" * 50):
            sock = raw_connect(file_server)
            sock.sendall(payload)
            sock.close()
        assert server_is_healthy(file_server, credentials)

    def test_disconnect_mid_auth(self, file_server, credentials):
        sock = raw_connect(file_server)
        sock.sendall(b"auth unix\n")
        sock.close()  # vanish during the challenge
        assert server_is_healthy(file_server, credentials)

    def test_disconnect_mid_putfile_payload(self, file_server, credentials):
        c = ChirpClient(*file_server.address, credentials=credentials)
        stream = c._stream
        stream.write_line("putfile", "/torn", 0o644, 1_000_000)
        stream.write(b"only a fraction of the promised bytes")
        c.close()  # abandon mid-payload
        assert server_is_healthy(file_server, credentials)
        # the torn file must not have been acknowledged as complete
        c2 = ChirpClient(*file_server.address, credentials=credentials)
        if c2.exists("/torn"):
            assert c2.stat("/torn").size < 1_000_000
        c2.close()

    def test_wrong_argument_counts(self, file_server, credentials):
        c = ChirpClient(*file_server.address, credentials=credentials)
        stream = c._stream
        for line in (
            ("open",),
            ("open", "/x"),
            ("pread", "1"),
            ("rename", "/only-one"),
            ("setacl", "/x"),
            ("close",),
        ):
            stream.write_line(*line)
            reply = stream.read_tokens()
            assert int(reply[0]) < 0  # an error status, not a crash
        assert c.whoami()
        c.close()

    def test_non_numeric_arguments(self, file_server, credentials):
        c = ChirpClient(*file_server.address, credentials=credentials)
        stream = c._stream
        stream.write_line("pread", "banana", "10", "0")
        assert int(stream.read_tokens()[0]) < 0
        stream.write_line("open", "/x", "zzz", "notamode")
        assert int(stream.read_tokens()[0]) < 0
        assert c.whoami()
        c.close()

    def test_oversized_line_rejected(self, file_server, credentials):
        sock = raw_connect(file_server)
        try:
            sock.sendall(b"open /" + b"a" * 200_000 + b" r 420\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # server may cut us off mid-send; that is fine too
        sock.close()
        assert server_is_healthy(file_server, credentials)

    @settings(
        max_examples=25,
        deadline=None,
        # the server fixture is deliberately shared across examples: the
        # property under test is precisely that it survives them all
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(junk=st.binary(min_size=1, max_size=200))
    def test_fuzz_authenticated_stream(self, junk, file_server, credentials):
        """Random bytes after auth: errors are fine, death is not."""
        c = ChirpClient(*file_server.address, credentials=credentials)
        stream = c._stream
        try:
            stream.write(junk + b"\n")
            stream.socket.settimeout(2)
            try:
                stream.read_line()
            except E.ChirpError:
                pass
        except (E.ChirpError, OSError):
            pass
        finally:
            c.close()
        assert server_is_healthy(file_server, credentials)


class TestResourceHygiene:
    def test_many_sequential_connections(self, file_server, credentials):
        for _ in range(50):
            c = ChirpClient(*file_server.address, credentials=credentials)
            c.putfile("/ping", b"x")
            c.close()
        assert server_is_healthy(file_server, credentials)

    def test_abandoned_fds_are_reaped_per_connection(self, file_server, credentials):
        # open many fds, never close them, drop the connection; repeat.
        for round_ in range(5):
            c = ChirpClient(*file_server.address, credentials=credentials)
            for i in range(20):
                c.open(f"/leak-{round_}-{i}", "wc")
            c.close()  # server must reap all 20
        assert server_is_healthy(file_server, credentials)

    def test_catalog_survives_garbage_datagrams(self):
        from repro.catalog.server import CatalogServer

        with CatalogServer() as cat:
            with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as s:
                for payload in (b"", b"\x00" * 1000, b"{bad json", b"[1,2,3]"):
                    s.sendto(payload, cat.address)
            import time

            time.sleep(0.1)
            assert cat.entries() == []
            # and a good report still lands afterwards
            import json

            assert cat.accept_report(
                json.dumps(
                    {"type": "chirp", "name": "s", "owner": "o", "host": "h", "port": 1}
                ).encode()
            )

    def test_db_server_survives_garbage(self, tmp_path, auth_context, credentials):
        from repro.db.client import DatabaseClient
        from repro.db.engine import MetadataDB
        from repro.db.server import DatabaseConfig, DatabaseServer

        db = MetadataDB(None)
        with DatabaseServer(db, DatabaseConfig(auth=auth_context)) as server:
            c = DatabaseClient(*server.address, credentials=credentials)
            stream = c._stream
            for line in (("dbcmd",), ("dbcmd", "{bad"), ("notacmd", "x")):
                stream.write_line(*line)
                assert int(stream.read_tokens()[0]) < 0
            assert c.get("anything") is None  # still alive
            c.close()
