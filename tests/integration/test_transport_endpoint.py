"""Integration tests for the transport layer against live servers.

The load-bearing claims: one client session may hold several connections
to one server; concurrent threads through that session never cross fds
or generations; the generation still advances exactly once per
reconnect; and the endpoint manager owns lifecycle (evict/close_all).
"""

import threading

import pytest

from repro.chirp.client import ChirpClient
from repro.core.pool import ClientPool
from repro.transport.endpoint import Endpoint, EndpointManager
from repro.transport.metrics import MetricsRegistry
from repro.util import errors as E


class TestEndpointElasticity:
    def test_grows_only_under_concurrency(self, file_server, credentials):
        ep = Endpoint(*file_server.address, credentials=credentials, max_conns=4)
        ep.connect()
        assert ep.live_count == 1
        # Serial checkouts never need a second connection.
        for _ in range(10):
            conn = ep.checkout()
            ep.checkin(conn)
        assert ep.live_count == 1
        # Holding one connection busy makes the next checkout dial.
        first = ep.checkout()
        second = ep.checkout()
        assert second is not first
        assert ep.live_count == 2
        ep.checkin(first)
        ep.checkin(second)
        ep.close()

    def test_growth_respects_the_cap(self, file_server, credentials):
        ep = Endpoint(*file_server.address, credentials=credentials, max_conns=2)
        ep.connect()
        held = [ep.checkout() for _ in range(6)]
        assert ep.live_count <= 2
        # Checkout past the cap oversubscribes instead of blocking.
        assert len({id(c) for c in held}) <= 2
        for c in held:
            ep.checkin(c)
        ep.close()

    def test_checkout_when_dead_raises_not_dials(self, file_server, credentials):
        ep = Endpoint(*file_server.address, credentials=credentials)
        ep.connect()
        gen = ep.generation
        ep.close()
        with pytest.raises(E.DisconnectedError):
            ep.checkout()
        # Recovery is explicit; nothing reconnected behind our back.
        assert ep.generation == gen
        assert not ep.is_connected

    def test_generation_bumps_once_per_reconnect(self, file_server, credentials):
        ep = Endpoint(*file_server.address, credentials=credentials)
        ep.connect()
        gen = ep.generation
        ep.close()
        # Many racers noticing the same death: one dial, one bump.
        threads = [
            threading.Thread(target=ep.ensure_connected) for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert ep.generation == gen + 1
        assert ep.live_count == 1
        ep.close()


class TestManyThreadsOneEndpoint:
    def test_no_fd_or_generation_cross_talk(self, file_server, credentials):
        """N threads hammer one session: every thread's fds stay its own."""
        metrics = MetricsRegistry()
        client = ChirpClient(
            *file_server.address,
            credentials=credentials,
            timeout=10.0,
            max_conns=4,
            metrics=metrics,
        )
        gen_before = client.generation
        n_threads = 8
        rounds = 25
        errors = []

        def hammer(tid: int) -> None:
            try:
                payload = bytes([tid]) * 512
                for r in range(rounds):
                    fd = client.open(f"/t{tid}-{r}", "rwc")
                    assert client.pwrite(fd, payload, 0) == len(payload)
                    back = client.pread(fd, len(payload), 0)
                    # Cross-talk would interleave another thread's byte.
                    assert back == payload, f"thread {tid} read foreign bytes"
                    client.fsync(fd)
                    assert client.fstat(fd).size == len(payload)
                    client.close_fd(fd)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((tid, exc))

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        # No reconnect happened, so no generation movement.
        assert client.generation == gen_before
        # The endpoint actually multiplexed: concurrency forced growth.
        assert client.endpoint.live_count > 1
        snap = metrics.snapshot()
        assert snap["verbs"]["open"]["calls"] == n_threads * rounds
        assert snap["verbs"]["pwrite"]["bytes_out"] >= n_threads * rounds * 512
        client.close()

    def test_fd_on_dead_connection_is_disconnect_not_badfd(
        self, server_factory, credentials
    ):
        server = server_factory.new()
        client = ChirpClient(*server.address, credentials=credentials, timeout=5.0)
        fd = client.open("/f", "rwc")
        client.pwrite(fd, b"x", 0)
        server.stop()
        with pytest.raises(E.DisconnectedError):
            for _ in range(3):  # server death may take one probe to notice
                client.pread(fd, 1, 0)
        # And probing again keeps reading as a disconnect, never BAD_FD.
        with pytest.raises(E.DisconnectedError):
            client.pread(fd, 1, 0)
        client.close()


class TestEndpointManager:
    def test_endpoints_are_cached_and_counted(self, server_factory, credentials):
        s1, s2 = server_factory.new(), server_factory.new()
        with EndpointManager(credentials=credentials, timeout=5.0) as mgr:
            a = mgr.endpoint(*s1.address)
            b = mgr.endpoint(*s2.address)
            assert a is mgr.endpoint(*s1.address)
            assert a is not b
            assert len(mgr) == 2

    def test_evict_forgets_the_endpoint(self, file_server, credentials):
        mgr = EndpointManager(credentials=credentials, timeout=5.0)
        ep = mgr.endpoint(*file_server.address)
        ep.connect()
        mgr.evict(*file_server.address)
        assert len(mgr) == 0
        assert not ep.is_connected
        assert mgr.endpoint(*file_server.address) is not ep
        mgr.close_all()

    def test_close_all_drops_every_connection(self, server_factory, credentials):
        servers = [server_factory.new() for _ in range(3)]
        mgr = EndpointManager(credentials=credentials, timeout=5.0)
        eps = [mgr.endpoint(*s.address) for s in servers]
        for ep in eps:
            ep.connect()
        mgr.close_all()
        assert len(mgr) == 0
        assert all(not ep.is_connected for ep in eps)


class TestClientPoolFacade:
    def test_context_manager_closes_sessions(self, server_factory, credentials):
        servers = [server_factory.new() for _ in range(2)]
        with ClientPool(credentials, timeout=5.0) as pool:
            clients = [pool.get(*s.address) for s in servers]
            assert all(c.is_connected for c in clients)
            assert len(pool) == 2
        assert all(not c.is_connected for c in clients)
        assert len(pool) == 0

    def test_evict_then_get_dials_fresh(self, file_server, credentials):
        pool = ClientPool(credentials, timeout=5.0)
        before = pool.get(*file_server.address)
        pool.evict(*file_server.address)
        assert not before.is_connected
        after = pool.get(*file_server.address)
        assert after is not before
        assert after.is_connected
        pool.close_all()

    def test_pool_metrics_observe_traffic(self, file_server, credentials):
        metrics = MetricsRegistry()
        with ClientPool(credentials, timeout=5.0, metrics=metrics) as pool:
            client = pool.get(*file_server.address)
            client.putfile("/m", b"abc")
            assert client.getfile("/m") == b"abc"
        snap = metrics.snapshot()
        assert snap["verbs"]["putfile"]["calls"] == 1
        assert snap["verbs"]["getfile"]["bytes_in"] == 3
        label = "%s:%d" % file_server.address
        assert snap["endpoints"][label]["calls"] >= 2
