"""Integration tests: the synthetic applications and the tss CLI."""

import os

import pytest

from repro.adapter.adapter import Adapter
from repro.adapter.interpose import interposed
from repro.apps.protomol import generate_runs
from repro.apps.sp5 import SyntheticSP5
from repro.cli import main as tss_main
from repro.core.dsdb import DSDB
from repro.core.retry import RetryPolicy
from repro.db.engine import MetadataDB
from repro.db.query import Query

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


class TestSyntheticSP5:
    def test_full_run_on_local_disk(self, tmp_path):
        app = SyntheticSP5(str(tmp_path / "sp5"), scale=0.1)
        app.install()
        app.initialize()
        app.process_events(5)
        assert app.verify_outputs() == 5
        assert app.stats.files_read == app.stats.files_installed
        assert app.stats.bytes_read == app.stats.bytes_installed

    def test_unmodified_sp5_runs_on_cfs(self, file_server, pool):
        """The paper's headline deployment: the same application code,
        unchanged, running against grid storage through the adapter."""
        adapter = Adapter(pool=pool, policy=FAST)
        host, port = file_server.address
        app = SyntheticSP5(f"/cfs/{host}:{port}/sp5", scale=0.1)
        with interposed(adapter):
            app.install()
            app.initialize()
            app.process_events(3)
            assert app.verify_outputs() == 3
        # data genuinely lives on the server
        export = file_server.backend.root
        assert os.path.isdir(os.path.join(export, "sp5", "lib"))
        assert len(os.listdir(os.path.join(export, "sp5", "output"))) == 3

    def test_corruption_is_detected(self, tmp_path):
        app = SyntheticSP5(str(tmp_path / "sp5"), scale=0.1)
        app.install()
        victim = tmp_path / "sp5" / "config" / "sp5.cfg"
        victim.write_bytes(b"corrupted config")
        with pytest.raises(RuntimeError):
            app.initialize()


class TestProtomolGems:
    def test_generated_runs_are_deterministic(self):
        a = generate_runs(5)
        b = generate_runs(5)
        for ra, rb in zip(a, b):
            assert ra.files()[0][1] == rb.files()[0][1]

    def test_sweep_covers_parameters(self):
        runs = generate_runs(30)
        assert len({r.molecule for r in runs}) == 5
        assert len({r.integrator for r in runs}) == 3

    def test_ingest_into_dsdb_and_query(self, server_factory, pool):
        servers = [server_factory.new() for _ in range(3)]
        db = MetadataDB(None, indexes=("tss_kind", "molecule"))
        dsdb = DSDB(db, pool, [s.address for s in servers], volume="gems")
        for run in generate_runs(6, trajectory_bytes=5000, energy_bytes=500):
            for name, content, meta in run.files():
                dsdb.ingest(name, content, meta)
        # the paper's use case: query by science metadata, then fetch
        hits = dsdb.query(
            Query.where(tss_kind="file", molecule="bpti", kind="trajectory")
        )
        assert hits
        for hit in hits:
            assert len(dsdb.fetch(hit["id"], verify=True)) == 5000


class TestCli:
    def url(self, file_server, path=""):
        host, port = file_server.address
        return f"/cfs/{host}:{port}{path}"

    def test_put_ls_cat_get_rm(self, file_server, tmp_path, capsys):
        src = tmp_path / "src.txt"
        src.write_text("via the cli")
        assert tss_main(["put", str(src), self.url(file_server, "/up.txt")]) == 0
        assert tss_main(["ls", self.url(file_server, "/")]) == 0
        assert "up.txt" in capsys.readouterr().out
        assert tss_main(["cat", self.url(file_server, "/up.txt")]) == 0
        assert "via the cli" in capsys.readouterr().out
        dst = tmp_path / "down.txt"
        assert tss_main(["get", self.url(file_server, "/up.txt"), str(dst)]) == 0
        assert dst.read_text() == "via the cli"
        assert tss_main(["rm", self.url(file_server, "/up.txt")]) == 0

    def test_mkdir_stat_statfs(self, file_server, capsys):
        assert tss_main(["mkdir", "-p", self.url(file_server, "/a/b")]) == 0
        assert tss_main(["stat", self.url(file_server, "/a/b")]) == 0
        assert "mode" in capsys.readouterr().out
        assert tss_main(["statfs", self.url(file_server, "/")]) == 0
        assert "total" in capsys.readouterr().out

    def test_ls_long(self, file_server, tmp_path, capsys):
        src = tmp_path / "f"
        src.write_bytes(b"12345")
        tss_main(["put", str(src), self.url(file_server, "/f")])
        capsys.readouterr()
        assert tss_main(["ls", "-l", self.url(file_server, "/")]) == 0
        out = capsys.readouterr().out
        assert "5" in out and "f" in out

    def test_acl_get_and_set(self, file_server, capsys):
        assert tss_main(["acl", "get", self.url(file_server, "/")]) == 0
        assert "rwldav" in capsys.readouterr().out
        assert tss_main(
            ["acl", "set", self.url(file_server, "/"), "hostname:*.nd.edu", "rwl"]
        ) == 0
        tss_main(["acl", "get", self.url(file_server, "/")])
        assert "hostname:*.nd.edu" in capsys.readouterr().out

    def test_whoami(self, file_server, capsys):
        assert tss_main(["whoami", self.url(file_server, "/")]) == 0
        assert "unix:" in capsys.readouterr().out

    def test_catalog_command(self, file_server, capsys):
        from repro.catalog.server import CatalogServer

        with CatalogServer() as cat:
            file_server.config.catalog_addrs = (cat.address,)
            file_server.report_now()
            import time

            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and not cat.entries():
                time.sleep(0.02)
            host, port = cat.address
            assert tss_main(["catalog", f"{host}:{port}"]) == 0
            assert "address" in capsys.readouterr().out

    def test_error_paths_return_nonzero(self, file_server, capsys):
        assert tss_main(["cat", self.url(file_server, "/missing")]) == 1
        assert tss_main(["acl", "set", self.url(file_server, "/")]) == 2
