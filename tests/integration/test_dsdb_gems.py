"""Integration tests: DSDB and the GEMS preservation machinery."""

import os

import pytest

from repro.core.dsdb import DSDB, live_replicas
from repro.core.placement import RoundRobinPlacement
from repro.db.client import DatabaseClient
from repro.db.engine import MetadataDB
from repro.db.query import Query
from repro.db.server import DatabaseConfig, DatabaseServer
from repro.gems import (
    Auditor,
    BudgetGreedyPolicy,
    FixedCountPolicy,
    PreservationService,
    Replicator,
)
from repro.util import errors as E
from repro.util.clock import ManualClock


@pytest.fixture()
def dsdb(server_factory, pool):
    servers = [server_factory.new() for _ in range(4)]
    db = MetadataDB(None, indexes=("tss_kind", "name"))
    store = DSDB(
        db,
        pool,
        [s.address for s in servers],
        volume="gems",
        placement=RoundRobinPlacement(seed=2),
    )
    store._test_servers = servers  # handle for failure injection
    return store


def data_roots(dsdb):
    return {s.address: s.backend.root for s in dsdb._test_servers}


def kill_server_data(dsdb, endpoint) -> int:
    """Owner eviction: delete every gems file on one server's disk."""
    root = data_roots(dsdb)[endpoint]
    d = os.path.join(root, "tssdata", "gems")
    killed = 0
    if os.path.isdir(d):
        for name in os.listdir(d):
            os.unlink(os.path.join(d, name))
            killed += 1
    return killed


class TestDsdbMechanism:
    def test_ingest_and_fetch(self, dsdb):
        rec = dsdb.ingest("run1/traj.dcd", b"payload", {"molecule": "bpti"})
        assert rec["size"] == 7
        assert dsdb.fetch(rec["id"]) == b"payload"

    def test_ingest_from_path_and_stream(self, dsdb, tmp_path):
        src = tmp_path / "data.bin"
        src.write_bytes(b"z" * 50000)
        rec = dsdb.ingest("from-path", str(src))
        assert rec["size"] == 50000
        with open(str(src), "rb") as f:
            rec2 = dsdb.ingest("from-stream", f)
        assert dsdb.fetch(rec2["id"]) == b"z" * 50000

    def test_multi_replica_ingest_uses_distinct_servers(self, dsdb):
        rec = dsdb.ingest("r", b"x" * 100, replicas=3)
        endpoints = {(r["host"], r["port"]) for r in rec["replicas"]}
        assert len(endpoints) == 3

    def test_replicas_capped_by_server_count(self, dsdb):
        rec = dsdb.ingest("r", b"x", replicas=10)
        assert len(rec["replicas"]) == 4

    def test_query_by_metadata(self, dsdb):
        dsdb.ingest("a", b"1", {"molecule": "bpti", "temperature": 300})
        dsdb.ingest("b", b"2", {"molecule": "villin", "temperature": 300})
        hits = dsdb.find(molecule="bpti")
        assert [h["name"] for h in hits] == ["a"]
        q = Query.where(tss_kind="file").and_("temperature", "ge", 300)
        assert dsdb.db.count(q) == 2

    def test_fetch_fails_over_dead_replica(self, dsdb, pool):
        rec = dsdb.ingest("r", b"important", replicas=2)
        first = rec["replicas"][0]
        server = next(
            s for s in dsdb._test_servers
            if s.address == (first["host"], first["port"])
        )
        server.stop()
        pool.invalidate(first["host"], first["port"])
        assert dsdb.fetch(rec["id"]) == b"important"

    def test_fetch_with_verify_skips_corrupt_replica(self, dsdb):
        rec = dsdb.ingest("r", b"good data!", replicas=2)
        bad = rec["replicas"][0]
        root = data_roots(dsdb)[(bad["host"], bad["port"])]
        real = os.path.join(root, bad["path"].lstrip("/"))
        with open(real, "wb") as f:
            f.write(b"corrupted!")
        assert dsdb.fetch(rec["id"], verify=True) == b"good data!"

    def test_all_replicas_gone_raises(self, dsdb):
        rec = dsdb.ingest("r", b"x")
        for rep in rec["replicas"]:
            kill_server_data(dsdb, (rep["host"], rep["port"]))
        with pytest.raises(E.DoesNotExistError):
            dsdb.fetch(rec["id"])

    def test_delete_removes_data_and_record(self, dsdb):
        rec = dsdb.ingest("r", b"x", replicas=2)
        dsdb.delete(rec["id"])
        assert dsdb.get(rec["id"]) is None
        assert dsdb.stored_bytes() == 0

    def test_add_and_drop_replica(self, dsdb):
        rec = dsdb.ingest("r", b"x" * 1000)
        rec = dsdb.add_replica(rec["id"])
        assert len(rec["replicas"]) == 2
        rec = dsdb.drop_replica(rec["id"], rec["replicas"][0])
        assert len(rec["replicas"]) == 1
        assert dsdb.fetch(rec["id"]) == b"x" * 1000

    def test_stored_bytes_counts_all_replicas(self, dsdb):
        dsdb.ingest("a", b"x" * 100, replicas=2)
        dsdb.ingest("b", b"y" * 50)
        assert dsdb.stored_bytes() == 250

    def test_works_against_remote_database(self, server_factory, pool, auth_context, credentials):
        """DSDB with the database behind the TCP server (the paper's
        deployment shape: a distinct database service)."""
        servers = [server_factory.new() for _ in range(2)]
        db = MetadataDB(None, indexes=("tss_kind",))
        with DatabaseServer(db, DatabaseConfig(auth=auth_context)) as dbs:
            remote = DatabaseClient(*dbs.address, credentials=credentials)
            dsdb = DSDB(remote, pool, [s.address for s in servers])
            rec = dsdb.ingest("remote-rec", b"over tcp", replicas=2)
            assert dsdb.fetch(rec["id"], verify=True) == b"over tcp"
            assert dsdb.find(name="remote-rec")
            remote.close()


class TestAuditor:
    def test_clean_system_audits_clean(self, dsdb):
        dsdb.ingest("a", b"1", replicas=2)
        report = Auditor(dsdb).audit_once()
        assert report.replicas_checked == 2
        assert report.problems == 0

    def test_detects_missing_replicas(self, dsdb):
        rec = dsdb.ingest("a", b"1", replicas=2)
        victim = (rec["replicas"][0]["host"], rec["replicas"][0]["port"])
        killed = kill_server_data(dsdb, victim)
        report = Auditor(dsdb).audit_once()
        assert report.missing == killed == 1
        updated = dsdb.get(rec["id"])
        states = sorted(r["state"] for r in updated["replicas"])
        assert states == ["missing", "ok"]

    def test_detects_damaged_replicas(self, dsdb):
        rec = dsdb.ingest("a", b"pristine bytes", replicas=2)
        bad = rec["replicas"][1]
        root = data_roots(dsdb)[(bad["host"], bad["port"])]
        real = os.path.join(root, bad["path"].lstrip("/"))
        with open(real, "r+b") as f:
            f.write(b"XX")
        report = Auditor(dsdb).audit_once()
        assert report.damaged == 1

    def test_location_only_audit_misses_corruption(self, dsdb):
        """The cheap audit mode catches deletion but not bit rot --
        documented behaviour, pinned here."""
        rec = dsdb.ingest("a", b"pristine bytes", replicas=1)
        bad = rec["replicas"][0]
        root = data_roots(dsdb)[(bad["host"], bad["port"])]
        real = os.path.join(root, bad["path"].lstrip("/"))
        with open(real, "r+b") as f:
            f.write(b"XX")  # same size, different content
        report = Auditor(dsdb, verify_checksums=False).audit_once()
        assert report.damaged == 0

    def test_reports_lost_records(self, dsdb):
        rec = dsdb.ingest("a", b"1")
        kill_server_data(dsdb, (rec["replicas"][0]["host"], rec["replicas"][0]["port"]))
        report = Auditor(dsdb).audit_once()
        assert rec["id"] in report.lost_records

    def test_recovered_replica_marked_ok_again(self, dsdb):
        rec = dsdb.ingest("a", b"1", replicas=1)
        dsdb.mark_replica(rec["id"], rec["replicas"][0], "missing")
        report = Auditor(dsdb).audit_once()
        assert report.healthy == 1
        assert live_replicas(dsdb.get(rec["id"]))


class TestReplicatorAndPreservation:
    def test_repair_restores_copy_count(self, dsdb):
        for i in range(4):
            dsdb.ingest(f"f{i}", bytes([i]) * 1000)
        policy = BudgetGreedyPolicy(8 * 1000)  # room for 2 copies each
        svc = PreservationService(dsdb, policy, clock=ManualClock())
        point = svc.step()
        assert point.stored_bytes == 8000
        assert point.live_replicas == 8

    def test_budget_is_respected(self, dsdb):
        for i in range(4):
            dsdb.ingest(f"f{i}", bytes([i]) * 1000)
        policy = BudgetGreedyPolicy(6500)
        svc = PreservationService(dsdb, policy, clock=ManualClock())
        point = svc.step()
        assert point.stored_bytes <= 6500

    def test_failure_detect_and_repair_cycle(self, dsdb):
        """The Figure 9 story at test scale: fill to budget, induce a
        failure, watch audit + repair restore the stored volume."""
        recs = [dsdb.ingest(f"f{i}", bytes([i % 251]) * 500) for i in range(8)]
        policy = BudgetGreedyPolicy(16 * 500)  # room for 2 copies of each
        svc = PreservationService(dsdb, policy, clock=ManualClock())
        filled = svc.step()
        assert filled.stored_bytes == 8000
        victim = dsdb.servers[0]
        killed = kill_server_data(dsdb, victim)
        assert killed > 0
        recovered = svc.step()
        assert recovered.missing == killed  # auditor noted each loss
        assert recovered.stored_bytes == 8000  # replicator repaired
        # and every file still fetches intact
        for rec in recs:
            assert dsdb.fetch(rec["id"], verify=True) == bytes([recs.index(rec) % 251]) * 500

    def test_damaged_replica_is_replaced(self, dsdb):
        rec = dsdb.ingest("a", b"precious cargo", replicas=2)
        bad = rec["replicas"][0]
        root = data_roots(dsdb)[(bad["host"], bad["port"])]
        with open(os.path.join(root, bad["path"].lstrip("/")), "r+b") as f:
            f.write(b"XXXX")
        svc = PreservationService(dsdb, FixedCountPolicy(2), clock=ManualClock())
        point = svc.step()
        assert point.damaged == 1
        assert point.dropped == 1
        assert point.added == 1
        fresh = dsdb.get(rec["id"])
        assert len(live_replicas(fresh)) == 2
        assert dsdb.fetch(fresh["id"], verify=True) == b"precious cargo"

    def test_unrepairable_record_does_not_wedge_the_loop(self, dsdb):
        rec = dsdb.ingest("gone", b"x")
        for rep in rec["replicas"]:
            kill_server_data(dsdb, (rep["host"], rep["port"]))
        dsdb.ingest("fine", b"y", replicas=1)
        svc = PreservationService(dsdb, FixedCountPolicy(2), clock=ManualClock())
        point = svc.step()
        # the healthy record still got its second copy
        fine = dsdb.find(name="fine")[0]
        assert len(live_replicas(fine)) == 2
        assert point.missing >= 1

    def test_timeline_is_recorded(self, dsdb):
        dsdb.ingest("a", b"1")
        clock = ManualClock()
        svc = PreservationService(dsdb, FixedCountPolicy(2), clock=clock, cycle_interval=10)
        svc.run_cycles(3)
        assert len(svc.timeline) == 3
        assert svc.timeline[2].time >= 20

    def test_background_service_runs(self, dsdb):
        import time

        dsdb.ingest("a", b"1" * 100)
        svc = PreservationService(
            dsdb, FixedCountPolicy(2), cycle_interval=0.05
        )
        svc.start()
        try:
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and len(svc.timeline) < 2:
                time.sleep(0.02)
        finally:
            svc.stop()
        assert len(svc.timeline) >= 2
        assert svc.timeline[-1].live_replicas == 2
