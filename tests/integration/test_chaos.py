"""Seeded chaos soak: degraded-mode reads under injected transport faults.

The acceptance scenario for the robustness work: a 3-replica
``ReplicatedFS`` whose replicas all sit behind fault proxies -- one
replica hard-down (every connection reset), one jittery (seeded mix of
resets, truncations and latency), one healthy.  Every read must still
complete, within its deadline budget, by failing over; the dead
replica's circuit breaker must be observably open in the metrics
snapshot; and re-running the same workload with the same seed must
replay the *identical* fault sequence (the proxies' event logs are the
witness).
"""

from __future__ import annotations

import pytest

from repro.chirp.protocol import OpenFlags
from repro.core.metastore import ChirpMetadataStore
from repro.core.placement import RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.core.replfs import ReplicatedFS
from repro.core.retry import RetryPolicy
from repro.transport.deadline import Deadline
from repro.transport.faults import FaultPlan, FaultyListener
from repro.transport.health import STATE_OPEN
from repro.transport.metrics import MetricsRegistry

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)

CHAOS_SEED = 20260805
READ_BUDGET = 15.0  # generous wall-clock ceiling per read, CI-safe

# The workload: fixed names, fixed sizes, so byte offsets on the wire --
# and therefore the proxies' fault trigger points -- are reproducible.
PAYLOADS = {f"/f{i}": bytes([65 + i]) * (512 * (i + 1)) for i in range(4)}


def _jitter_plan(seed: int) -> FaultPlan:
    """The seeded mix required by the acceptance scenario."""
    return FaultPlan.chaos(
        seed,
        reset_rate=0.2,
        truncate_rate=0.3,
        latency=(0.0, 0.004),
        cut_range=(64, 2048),
    )


def chaos_run(seed: int, server_factory, credentials) -> dict:
    """One full populate-then-read cycle against freshly faulted proxies.

    Returns everything a caller needs to judge the run: what each read
    produced, the health section of the metrics snapshot, each proxy's
    event log, and the dead proxy's breaker label.
    """
    servers = [server_factory.new() for _ in range(3)]
    dir_server = server_factory.new()
    proxies = [FaultyListener(s.address).start() for s in servers]
    proxy_addrs = [p.address for p in proxies]

    # Phase 1: populate through the (still pass-through) proxies, so the
    # replica stubs point at the proxy addresses.
    setup_pool = ClientPool(credentials, timeout=10.0, metrics=MetricsRegistry())
    try:
        dir_client = setup_pool.get(*dir_server.address)
        dir_client.mkdir("/cvol")
        for s in servers:
            c = setup_pool.get(*s.address)
            c.mkdir("/tssdata")
            c.mkdir("/tssdata/cvol")
        fs = ReplicatedFS(
            ChirpMetadataStore(dir_client, "/cvol", FAST),
            setup_pool,
            proxy_addrs,
            "/tssdata/cvol",
            copies=3,
            placement=RoundRobinPlacement(seed=11),
            policy=FAST,
        )
        for path, data in PAYLOADS.items():
            handle = fs.open(path, OpenFlags(write=True, create=True))
            try:
                handle.pwrite(data, 0)
            finally:
                handle.close()
    finally:
        setup_pool.close()

    # Phase 2: inject the faults -- replica 0 hard-down, replica 1
    # jittery, replica 2 healthy -- and read everything back through a
    # fresh pool (fresh connections, fresh breakers).
    proxies[0].break_now(refuse_new=True)
    proxies[1].plan = _jitter_plan(seed)
    read_pool = ClientPool(credentials, timeout=5.0, metrics=MetricsRegistry())
    try:
        fs = ReplicatedFS(
            ChirpMetadataStore(read_pool.get(*dir_server.address), "/cvol", FAST),
            read_pool,
            proxy_addrs,
            "/tssdata/cvol",
            copies=3,
            placement=RoundRobinPlacement(seed=11),
            policy=FAST,
        )
        reads = {}
        degraded = 0
        for path, data in PAYLOADS.items():
            deadline = Deadline(READ_BUDGET)
            handle = fs.open(path, OpenFlags(read=True))
            try:
                reads[path] = handle.pread(len(data), 0, deadline=deadline)
                degraded += int(handle.degraded or handle.suspects)
            finally:
                handle.close()
            assert not deadline.expired, f"{path}: read blew its budget"
        health = read_pool.metrics.snapshot()["health"]
    finally:
        read_pool.close()

    logs = []
    for p in proxies:
        p.stop()
        logs.append(p.event_log())
    return {
        "reads": reads,
        "degraded": degraded,
        "health": health,
        "logs": logs,
        "dead_label": "%s:%d" % proxies[0].address,
    }


@pytest.mark.chaos
class TestSeededChaosSoak:
    def test_failover_breaker_and_reproducibility(self, server_factory, credentials):
        first = chaos_run(CHAOS_SEED, server_factory, credentials)

        # Every read completed, correctly, despite one dead and one
        # jittery replica.
        assert first["reads"] == PAYLOADS
        # At least one handle actually exercised the degraded path
        # (dropped a replica at open or failed over mid-read).
        assert first["degraded"] >= 1

        # The dead replica's breaker is open in the metrics snapshot,
        # and tripped because of consecutive transport failures.
        dead = first["health"][first["dead_label"]]
        assert dead["state"] == STATE_OPEN
        assert dead["consecutive_failures"] >= 1

        # Same seed, same workload: the identical fault sequence, per
        # proxy, down to the byte offsets of every cut.
        second = chaos_run(CHAOS_SEED, server_factory, credentials)
        assert second["reads"] == PAYLOADS
        for index, (a, b) in enumerate(zip(first["logs"], second["logs"])):
            assert a == b, f"proxy {index} fault sequence diverged"

    def test_jitter_plan_is_deterministic(self):
        plan_a = _jitter_plan(CHAOS_SEED)
        plan_b = _jitter_plan(CHAOS_SEED)
        a = [plan_a.next_script().describe() for _ in range(16)]
        b = [plan_b.next_script().describe() for _ in range(16)]
        assert a == b
