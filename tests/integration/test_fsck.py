"""Integration tests: fsck over live DSFS volumes."""

import pytest

from repro.core.dsfs import DSFS
from repro.core.fsck import fsck_volume
from repro.core.placement import RoundRobinPlacement
from repro.core.retry import RetryPolicy

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


@pytest.fixture()
def volume(server_factory, pool):
    servers = [server_factory.new() for _ in range(3)]
    dir_server = server_factory.new()
    fs = DSFS.create(
        pool,
        *dir_server.address,
        "/vol",
        [s.address for s in servers],
        name="vol",
        placement=RoundRobinPlacement(seed=7),
        policy=FAST,
    )
    fs._test_servers = servers
    return fs


class TestFsckClean:
    def test_healthy_volume_is_clean(self, volume):
        volume.mkdir("/a")
        for i in range(6):
            volume.write_file(f"/a/f{i}", bytes([i]) * 100)
        report = fsck_volume(volume)
        assert report.clean
        assert report.files_checked == 6
        assert report.healthy == 6
        assert report.directories_checked == 2  # "/" and "/a"

    def test_empty_volume(self, volume):
        report = fsck_volume(volume)
        assert report.clean
        assert report.files_checked == 0


class TestFsckDangling:
    def test_detects_dangling_stub(self, volume, pool):
        volume.write_file("/doomed", b"x")
        stub = volume.stub_for("/doomed")
        pool.get(*stub.endpoint).unlink(stub.path)
        report = fsck_volume(volume)
        assert report.dangling_stubs == {"/doomed": "no data file"}
        assert not report.clean

    def test_removes_dangling_when_asked(self, volume, pool):
        volume.write_file("/doomed", b"x")
        volume.write_file("/fine", b"y")
        stub = volume.stub_for("/doomed")
        pool.get(*stub.endpoint).unlink(stub.path)
        report = fsck_volume(volume, remove_dangling=True)
        assert report.removed_stubs == 1
        assert volume.listdir("/") == ["fine"]
        assert fsck_volume(volume).clean

    def test_unreachable_server_is_not_removed(self, volume, pool):
        """Conservative repair: a down server may come back; never delete
        its stubs."""
        volume.write_file("/maybe", b"x")
        endpoint = volume.stub_for("/maybe").endpoint
        victim = next(s for s in volume._test_servers if s.address == endpoint)
        victim.stop()
        pool.invalidate(*endpoint)
        report = fsck_volume(volume, remove_dangling=True)
        assert report.dangling_stubs["/maybe"] == "server unreachable"
        assert report.removed_stubs == 0
        assert "maybe" in volume.listdir("/")


class TestFsckOrphans:
    def test_detects_orphan_data(self, volume, pool):
        volume.write_file("/kept", b"x")
        # simulate an interrupted replication: data with no stub
        client = pool.get(*volume.servers[0])
        client.putfile(volume.data_dir + "/file-orphaned-123", b"stranded")
        report = fsck_volume(volume)
        assert len(report.orphan_data) == 1
        assert report.orphan_data[0][2].endswith("file-orphaned-123")

    def test_removes_orphans_when_asked(self, volume, pool):
        client = pool.get(*volume.servers[1])
        client.putfile(volume.data_dir + "/file-orphaned-9", b"stranded")
        report = fsck_volume(volume, remove_orphans=True)
        assert report.removed_orphans == 1
        assert fsck_volume(volume).clean

    def test_referenced_data_never_flagged(self, volume):
        for i in range(9):
            volume.write_file(f"/f{i}", bytes([i]))
        report = fsck_volume(volume)
        assert report.orphan_data == []

    def test_rename_does_not_confuse_fsck(self, volume):
        volume.write_file("/old", b"x")
        volume.mkdir("/sub")
        volume.rename("/old", "/sub/new")
        report = fsck_volume(volume)
        assert report.clean


class TestFsckOnDpfs:
    def test_works_on_private_volumes_too(self, server_factory, pool, tmp_path):
        from repro.core.dpfs import DPFS

        servers = [server_factory.new() for _ in range(2)]
        fs = DPFS.create(
            str(tmp_path / "meta"), pool, [s.address for s in servers],
            name="priv", policy=FAST,
        )
        fs.write_file("/a", b"1")
        fs.write_file("/b", b"2")
        stub = fs.stub_for("/a")
        pool.get(*stub.endpoint).unlink(stub.path)
        report = fsck_volume(fs, remove_dangling=True)
        assert report.removed_stubs == 1
        assert fs.listdir("/") == ["b"]


class TestFsckCli:
    def test_tss_fsck_command(self, volume, pool, capsys):
        from repro.cli import main as tss_main

        volume.write_file("/good", b"x")
        volume.write_file("/bad", b"y")
        stub = volume.stub_for("/bad")
        pool.get(*stub.endpoint).unlink(stub.path)
        host, port = volume.dir_endpoint
        spec = f"/dsfs/{host}:{port}@vol"
        assert tss_main(["fsck", spec]) == 1  # dirty volume
        out = capsys.readouterr().out
        assert "dangling  /bad" in out
        assert tss_main(["fsck", spec, "--repair"]) == 0
        capsys.readouterr()
        assert tss_main(["fsck", spec]) == 0  # clean now
        assert "clean" in capsys.readouterr().out
