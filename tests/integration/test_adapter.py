"""Integration tests: the adapter's POSIX surface and interposition."""

import errno
import io
import os
import stat as stat_mod

import pytest

from repro.adapter.adapter import Adapter
from repro.adapter.interpose import interposed
from repro.adapter.mountlist import Mountlist
from repro.core.dsfs import DSFS
from repro.core.localfs import LocalFilesystem
from repro.core.retry import RetryPolicy

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


@pytest.fixture()
def adapter(pool):
    a = Adapter(pool=pool, policy=FAST)
    yield a
    # the pool fixture closes connections; do not double-close


@pytest.fixture()
def cfs_url(file_server):
    host, port = file_server.address
    return f"/cfs/{host}:{port}"


class TestAutoNamespaces:
    def test_cfs_open_write_read(self, adapter, cfs_url):
        with adapter.open(f"{cfs_url}/hello.txt", "w") as f:
            f.write("hello adapter\n")
        with adapter.open(f"{cfs_url}/hello.txt") as f:
            assert f.read() == "hello adapter\n"

    def test_binary_unbuffered_by_default(self, adapter, cfs_url):
        with adapter.open(f"{cfs_url}/b.bin", "wb") as f:
            assert isinstance(f, io.RawIOBase)
            f.write(b"\x00\x01\x02")
        with adapter.open(f"{cfs_url}/b.bin", "rb") as f:
            assert f.read() == b"\x00\x01\x02"

    def test_dsfs_auto_namespace(self, adapter, server_factory, pool, cfs_url):
        data = [server_factory.new() for _ in range(2)]
        dir_server = server_factory.new()
        DSFS.create(
            pool, *dir_server.address, "/run5",
            [s.address for s in data], name="run5", policy=FAST,
        )
        host, port = dir_server.address
        url = f"/dsfs/{host}:{port}@run5"
        with adapter.open(f"{url}/traj.dat", "wb") as f:
            f.write(b"trajectory")
        assert adapter.listdir(url + "/") == ["traj.dat"]
        assert adapter.read_bytes(f"{url}/traj.dat") == b"trajectory"

    def test_unknown_namespace_is_enoent(self, adapter):
        with pytest.raises(OSError) as exc:
            adapter.stat("/not-tss/path")
        assert exc.value.errno == errno.ENOENT

    def test_bad_endpoint_spec(self, adapter):
        with pytest.raises(OSError):
            adapter.listdir("/cfs/no-port-here/")

    def test_unreachable_server_is_oserror(self, adapter):
        with pytest.raises(OSError):
            adapter.stat("/cfs/127.0.0.1:1/x")


class TestMounts:
    def test_explicit_mount_of_localfs(self, adapter, tmp_path):
        local = tmp_path / "localtree"
        local.mkdir()
        (local / "f.txt").write_text("local")
        adapter.mount("/mnt", LocalFilesystem(str(local)))
        assert adapter.listdir("/mnt") == ["f.txt"]
        assert adapter.read_bytes("/mnt/f.txt") == b"local"

    def test_mountlist_rule(self, adapter, cfs_url):
        adapter.write_bytes(f"{cfs_url}/software", b"")  # ensure dir? no-op file
        adapter.add_mount_rule("/usr/tss", cfs_url)
        adapter.write_bytes("/usr/tss/app.bin", b"binary")
        assert adapter.read_bytes(f"{cfs_url}/app.bin") == b"binary"

    def test_mountlist_from_text(self, pool, cfs_url):
        ml = Mountlist.from_text(f"/data {cfs_url}\n")
        a = Adapter(pool=pool, policy=FAST, mountlist=ml)
        a.write_bytes("/data/x", b"1")
        assert a.exists(f"{cfs_url}/x")

    def test_unmount(self, adapter, tmp_path):
        adapter.mount("/mnt", LocalFilesystem(str(tmp_path)))
        adapter.unmount("/mnt")
        with pytest.raises(OSError):
            adapter.listdir("/mnt")

    def test_rename_across_abstractions_is_exdev(self, adapter, tmp_path, cfs_url):
        adapter.mount("/mnt", LocalFilesystem(str(tmp_path)))
        adapter.write_bytes("/mnt/f", b"1")
        with pytest.raises(OSError) as exc:
            adapter.rename("/mnt/f", f"{cfs_url}/f")
        assert exc.value.errno == errno.EXDEV


class TestPosixSemantics:
    def test_stat_is_os_compatible(self, adapter, cfs_url):
        adapter.write_bytes(f"{cfs_url}/f", b"12345")
        st = adapter.stat(f"{cfs_url}/f")
        assert st.st_size == 5
        assert stat_mod.S_ISREG(st.st_mode)

    def test_errors_carry_errno(self, adapter, cfs_url):
        with pytest.raises(FileNotFoundError):
            adapter.stat(f"{cfs_url}/missing")
        adapter.mkdir(f"{cfs_url}/d")
        with pytest.raises(FileExistsError):
            adapter.mkdir(f"{cfs_url}/d")

    def test_seek_and_tell(self, adapter, cfs_url):
        with adapter.open(f"{cfs_url}/f", "wb") as f:
            f.write(b"0123456789")
        with adapter.open(f"{cfs_url}/f", "rb") as f:
            f.seek(4)
            assert f.tell() == 4
            assert f.read(2) == b"45"
            f.seek(-2, os.SEEK_END)
            assert f.read() == b"89"

    def test_append_mode(self, adapter, cfs_url):
        with adapter.open(f"{cfs_url}/log", "ab") as f:
            f.write(b"one\n")
        with adapter.open(f"{cfs_url}/log", "ab") as f:
            f.write(b"two\n")
        assert adapter.read_bytes(f"{cfs_url}/log") == b"one\ntwo\n"

    def test_rplus_mode(self, adapter, cfs_url):
        adapter.write_bytes(f"{cfs_url}/f", b"AAAA")
        with adapter.open(f"{cfs_url}/f", "r+b") as f:
            f.seek(1)
            f.write(b"BB")
        assert adapter.read_bytes(f"{cfs_url}/f") == b"ABBA"

    def test_truncate_via_handle(self, adapter, cfs_url):
        with adapter.open(f"{cfs_url}/f", "wb") as f:
            f.write(b"0123456789")
            f.truncate(4)
        assert adapter.stat(f"{cfs_url}/f").st_size == 4

    def test_text_mode_with_lines(self, adapter, cfs_url):
        with adapter.open(f"{cfs_url}/lines.txt", "w") as f:
            f.write("one\ntwo\nthree\n")
        with adapter.open(f"{cfs_url}/lines.txt") as f:
            assert f.readlines() == ["one\n", "two\n", "three\n"]

    def test_exclusive_mode(self, adapter, cfs_url):
        with adapter.open(f"{cfs_url}/x", "xb") as f:
            f.write(b"1")
        with pytest.raises(FileExistsError):
            adapter.open(f"{cfs_url}/x", "xb")

    def test_makedirs_and_walk(self, adapter, cfs_url):
        adapter.makedirs(f"{cfs_url}/a/b/c")
        adapter.write_bytes(f"{cfs_url}/a/b/f.txt", b"1")
        walked = list(adapter.walk(f"{cfs_url}/a"))
        dirs = {d for _, ds, _ in walked for d in ds}
        files = {f for _, _, fs in walked for f in fs}
        assert "b" in dirs and "c" in dirs
        assert "f.txt" in files

    def test_utime_and_exists(self, adapter, cfs_url):
        adapter.write_bytes(f"{cfs_url}/f", b"1")
        adapter.utime(f"{cfs_url}/f", (10, 20))
        assert adapter.stat(f"{cfs_url}/f").st_mtime == 20
        assert adapter.exists(f"{cfs_url}/f")
        assert not adapter.exists(f"{cfs_url}/nope")

    def test_statfs(self, adapter, cfs_url):
        fs = adapter.statfs(cfs_url + "/")
        assert fs.total_bytes > 0

    def test_fileno_unsupported(self, adapter, cfs_url):
        with adapter.open(f"{cfs_url}/f", "wb") as f:
            with pytest.raises(OSError):
                f.fileno()

    def test_write_to_readonly_handle_rejected(self, adapter, cfs_url):
        adapter.write_bytes(f"{cfs_url}/f", b"1")
        with adapter.open(f"{cfs_url}/f", "rb") as f:
            with pytest.raises(io.UnsupportedOperation):
                f.write(b"x")

    def test_sync_writes_switch(self, pool, cfs_url):
        a = Adapter(pool=pool, policy=FAST, sync_writes=True)
        with a.open(f"{cfs_url}/durable", "wb") as f:
            f.write(b"synced")
        assert a.read_bytes(f"{cfs_url}/durable") == b"synced"


class TestInterposition:
    def test_unmodified_code_reads_and_writes(self, adapter, cfs_url):
        def legacy_app(path):
            """Plain Python file code, knowing nothing about the TSS."""
            with open(path, "w") as f:
                f.write("legacy data")
            with open(path) as f:
                return f.read()

        with interposed(adapter):
            assert legacy_app(f"{cfs_url}/legacy.txt") == "legacy data"

    def test_os_functions_are_routed(self, adapter, cfs_url):
        with interposed(adapter):
            os.mkdir(f"{cfs_url}/d")
            with open(f"{cfs_url}/d/f", "wb") as f:
                f.write(b"1")
            assert os.listdir(f"{cfs_url}/d") == ["f"]
            assert os.stat(f"{cfs_url}/d/f").st_size == 1
            assert os.path.exists(f"{cfs_url}/d/f")
            assert os.path.isdir(f"{cfs_url}/d")
            os.rename(f"{cfs_url}/d/f", f"{cfs_url}/d/g")
            os.remove(f"{cfs_url}/d/g")
            os.rmdir(f"{cfs_url}/d")

    def test_local_paths_untouched(self, adapter, tmp_path):
        local = tmp_path / "plain.txt"
        with interposed(adapter):
            with open(str(local), "w") as f:
                f.write("still local")
        assert local.read_text() == "still local"

    def test_patch_is_reverted(self, adapter):
        import builtins

        original = builtins.open
        with interposed(adapter):
            assert builtins.open is not original
        assert builtins.open is original

    def test_reverted_even_after_exception(self, adapter):
        import builtins

        original = builtins.open
        with pytest.raises(RuntimeError):
            with interposed(adapter):
                raise RuntimeError("app crashed")
        assert builtins.open is original

    def test_rename_between_worlds_rejected(self, adapter, cfs_url, tmp_path):
        with interposed(adapter):
            with pytest.raises(OSError):
                os.rename(str(tmp_path / "x"), f"{cfs_url}/x")
