"""Integration tests: catalogs, discovery, and staleness."""

import json
import time

import pytest

from repro.catalog.client import CatalogClient, query_catalog
from repro.catalog.report import ServerReport
from repro.catalog.server import CatalogServer
from repro.util.errors import DisconnectedError


@pytest.fixture()
def catalog():
    with CatalogServer() as cat:
        yield cat


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestReportIntake:
    def test_server_reports_are_listed(self, catalog, server_factory):
        server = server_factory.new(
            catalog_addrs=(catalog.address,), name="storage01"
        )
        server.report_now()
        assert wait_for(lambda: len(catalog.entries()) == 1)
        entry = catalog.entries()[0]
        assert entry.name == "storage01"
        assert entry.port == server.address[1]
        assert entry.total_bytes > 0

    def test_periodic_reporting(self, catalog, server_factory):
        server_factory.new(
            catalog_addrs=(catalog.address,), report_interval=0.1, name="ticker"
        )
        assert wait_for(lambda: len(catalog.entries()) == 1)

    def test_re_report_updates_in_place(self, catalog, server_factory):
        server = server_factory.new(catalog_addrs=(catalog.address,))
        server.report_now()
        server.report_now()
        assert wait_for(lambda: len(catalog.entries()) == 1)

    def test_malformed_datagram_dropped(self, catalog):
        assert not catalog.accept_report(b"not json at all")
        assert not catalog.accept_report(json.dumps({"type": "x"}).encode())
        assert catalog.entries() == []

    def test_report_includes_root_acl(self, catalog, server_factory):
        server = server_factory.new(catalog_addrs=(catalog.address,))
        server.report_now()
        assert wait_for(lambda: len(catalog.entries()) == 1)
        assert "rwldav" in catalog.entries()[0].root_acl


class TestStaleness:
    def test_unrefreshed_entries_expire(self):
        clock = {"now": 1000.0}
        cat = CatalogServer(lifetime=60.0, now=lambda: clock["now"])
        report = {
            "type": "chirp", "name": "s", "owner": "unix:x",
            "host": "10.0.0.1", "port": 9094,
        }
        cat.accept_report(json.dumps(report).encode())
        assert len(cat.entries()) == 1
        clock["now"] += 61.0
        assert cat.entries() == []

    def test_refresh_keeps_entry_alive(self):
        clock = {"now": 0.0}
        cat = CatalogServer(lifetime=60.0, now=lambda: clock["now"])
        report = {
            "type": "chirp", "name": "s", "owner": "unix:x",
            "host": "10.0.0.1", "port": 9094,
        }
        for _ in range(5):
            cat.accept_report(json.dumps(report).encode())
            clock["now"] += 50.0
        assert len(cat.entries()) == 1


class TestQueryService:
    def test_json_format(self, catalog, server_factory):
        server = server_factory.new(catalog_addrs=(catalog.address,), name="q1")
        server.report_now()
        assert wait_for(lambda: len(catalog.entries()) == 1)
        body = query_catalog(*catalog.address, "json")
        docs = json.loads(body)
        assert docs[0]["name"] == "q1"

    def test_text_format(self, catalog, server_factory):
        server = server_factory.new(catalog_addrs=(catalog.address,), name="q2")
        server.report_now()
        assert wait_for(lambda: len(catalog.entries()) == 1)
        body = query_catalog(*catalog.address, "text")
        assert "name     = q2" in body

    def test_unknown_format_yields_error_document(self, catalog):
        body = query_catalog(*catalog.address, "xml")
        assert "error" in body


class TestCatalogClient:
    def test_discover_merges_catalogs(self, server_factory):
        """Multiple catalogs with overlapping server sets de-duplicate."""
        with CatalogServer() as cat_a, CatalogServer() as cat_b:
            shared = server_factory.new(
                catalog_addrs=(cat_a.address, cat_b.address), name="shared"
            )
            only_a = server_factory.new(catalog_addrs=(cat_a.address,), name="only-a")
            shared.report_now()
            only_a.report_now()
            assert wait_for(lambda: len(cat_a.entries()) == 2)
            assert wait_for(lambda: len(cat_b.entries()) == 1)
            client = CatalogClient([cat_a.address, cat_b.address])
            names = [r.name for r in client.discover()]
            assert names == ["only-a", "shared"]

    def test_unreachable_catalog_tolerated(self, catalog, server_factory):
        server = server_factory.new(catalog_addrs=(catalog.address,))
        server.report_now()
        assert wait_for(lambda: len(catalog.entries()) == 1)
        client = CatalogClient([("127.0.0.1", 1), catalog.address])
        assert len(client.discover()) == 1

    def test_all_catalogs_down_raises(self):
        client = CatalogClient([("127.0.0.1", 1)], timeout=0.5)
        with pytest.raises(DisconnectedError):
            client.discover()

    def test_find_space(self, catalog, server_factory):
        server = server_factory.new(catalog_addrs=(catalog.address,))
        server.report_now()
        assert wait_for(lambda: len(catalog.entries()) == 1)
        client = CatalogClient([catalog.address])
        assert client.find_space(1) != []
        assert client.find_space(10**18) == []

    def test_discovery_to_connection_flow(self, catalog, server_factory, credentials):
        """The paper's loop: discover at the catalog, then go direct."""
        from repro.chirp.client import ChirpClient

        server = server_factory.new(catalog_addrs=(catalog.address,), name="flow")
        server.report_now()
        assert wait_for(lambda: len(catalog.entries()) == 1)
        report = CatalogClient([catalog.address]).discover()[0]
        c = ChirpClient(report.host, report.port, credentials=credentials)
        c.putfile("/via-catalog", b"found you")
        assert c.getfile("/via-catalog") == b"found you"
        c.close()


class TestReportDocument:
    def test_roundtrip(self):
        report = ServerReport(
            type="chirp", name="n", owner="unix:o", host="h", port=1,
            total_bytes=10, free_bytes=5,
        )
        again = ServerReport.from_json(report.to_json())
        assert again.key == report.key
        assert again.total_bytes == 10

    def test_extra_fields_preserved(self):
        doc = {
            "type": "chirp", "name": "n", "owner": "o", "host": "h",
            "port": 1, "custom": "value",
        }
        report = ServerReport.from_json(json.dumps(doc))
        assert report.extra["custom"] == "value"
        assert json.loads(report.to_json())["custom"] == "value"

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError):
            ServerReport.from_json(json.dumps({"type": "chirp"}))
