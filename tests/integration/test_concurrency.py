"""Concurrency: the exclusive-create protocol and shared state under racing.

The paper's DSFS creation protocol leans entirely on "the 'exclusive
open' feature of the Unix interface ... so that in the event of a name
collision between two processes, file creation can be aborted."  These
tests race real threads through real servers to check the arbitration.
"""

import threading

import pytest

from repro.auth.methods import ClientCredentials
from repro.chirp.client import ChirpClient
from repro.chirp.protocol import OpenFlags
from repro.core.dsfs import DSFS
from repro.core.pool import ClientPool
from repro.core.retry import RetryPolicy
from repro.util import errors as E

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


def race(n_threads, fn):
    """Start n threads behind a barrier; returns their results/errors."""
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads

    def runner(i):
        barrier.wait()
        try:
            results[i] = ("ok", fn(i))
        except Exception as exc:  # noqa: BLE001 - collected for assertions
            results[i] = ("err", exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    return results


class TestExclusiveCreateRaces:
    def test_chirp_exclusive_open_has_one_winner(self, file_server, credentials):
        clients = [
            ChirpClient(*file_server.address, credentials=credentials)
            for _ in range(6)
        ]

        def attempt(i):
            return clients[i].open("/contested", "wcx")

        results = race(6, attempt)
        winners = [r for r in results if r[0] == "ok"]
        losers = [r for r in results if r[0] == "err"]
        assert len(winners) == 1
        assert all(isinstance(r[1], E.AlreadyExistsError) for r in losers)
        for c in clients:
            c.close()

    def test_dsfs_create_race_has_one_winner(self, server_factory, credentials):
        servers = [server_factory.new() for _ in range(2)]
        dir_server = server_factory.new()
        pools = [ClientPool(credentials) for _ in range(4)]
        DSFS.create(
            pools[0], *dir_server.address, "/vol",
            [s.address for s in servers], name="vol", policy=FAST,
        )
        views = [
            DSFS.open_volume(p, *dir_server.address, "/vol", policy=FAST)
            for p in pools
        ]
        flags = OpenFlags(write=True, create=True, exclusive=True)

        def attempt(i):
            handle = views[i].open("/contested", flags)
            handle.pwrite(f"winner-{i}".encode(), 0)
            handle.close()
            return i

        results = race(4, attempt)
        winners = [r for r in results if r[0] == "ok"]
        assert len(winners) == 1
        winner_id = winners[0][1]
        assert views[0].read_file("/contested") == f"winner-{winner_id}".encode()
        # exactly one data file exists: losers left no garbage behind
        from repro.core.fsck import fsck_volume

        assert fsck_volume(views[0]).clean
        for p in pools:
            p.close()

    def test_non_exclusive_concurrent_creates_converge(self, server_factory, credentials):
        """Plain (non-exclusive) create: every writer succeeds; the file
        ends with one writer's content and fsck stays clean."""
        servers = [server_factory.new() for _ in range(2)]
        dir_server = server_factory.new()
        pool = ClientPool(credentials)
        fs = DSFS.create(
            pool, *dir_server.address, "/vol",
            [s.address for s in servers], name="vol", policy=FAST,
        )

        def attempt(i):
            fs.write_file("/shared", f"writer-{i}".encode())
            return i

        results = race(4, attempt)
        assert all(r[0] == "ok" for r in results)
        content = fs.read_file("/shared")
        assert content in {f"writer-{i}".encode() for i in range(4)}
        from repro.core.fsck import fsck_volume

        report = fsck_volume(fs, remove_orphans=True)
        assert not report.dangling_stubs
        pool.close()


class TestSharedClientThreadSafety:
    def test_one_client_many_threads(self, file_server, credentials):
        """RPCs through one shared connection are serialized correctly."""
        client = ChirpClient(*file_server.address, credentials=credentials)

        def attempt(i):
            for j in range(25):
                client.putfile(f"/t{i}-{j}", bytes([i]) * 64)
            return sum(
                len(client.getfile(f"/t{i}-{j}")) for j in range(25)
            )

        results = race(8, attempt)
        assert all(r == ("ok", 25 * 64) for r in results)
        client.close()

    def test_pool_concurrent_get(self, file_server, credentials):
        pool = ClientPool(credentials)

        def attempt(i):
            return id(pool.get(*file_server.address))

        results = race(8, attempt)
        ids = {r[1] for r in results if r[0] == "ok"}
        assert len(ids) == 1  # one shared connection, no duplicates
        pool.close()


class TestGemsConcurrency:
    def test_parallel_ingest(self, server_factory, credentials):
        from repro.core.dsdb import DSDB
        from repro.db.engine import MetadataDB
        from repro.db.query import Query

        servers = [server_factory.new() for _ in range(3)]
        pool = ClientPool(credentials)
        db = MetadataDB(None, indexes=("tss_kind",))
        dsdb = DSDB(db, pool, [s.address for s in servers])

        def attempt(i):
            recs = [
                dsdb.ingest(f"w{i}/f{j}", bytes([i]) * 500, {"w": i})
                for j in range(5)
            ]
            return len(recs)

        results = race(6, attempt)
        assert all(r == ("ok", 5) for r in results)
        assert db.count(Query.where(tss_kind="file")) == 30
        # every record fetches intact
        for rec in db.query(Query.where(tss_kind="file")):
            assert dsdb.fetch(rec["id"], verify=True) == bytes([rec["w"]]) * 500
        pool.close()
