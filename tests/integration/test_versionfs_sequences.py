"""Randomized sequences: VersionedFS against an append-only history model."""

import random

import pytest

from repro.chirp.protocol import OpenFlags
from repro.core.metastore import ChirpMetadataStore
from repro.core.placement import RoundRobinPlacement
from repro.core.retry import RetryPolicy
from repro.core.versionfs import VersionedFS

FAST = RetryPolicy(max_attempts=3, initial_delay=0.05)


@pytest.fixture()
def vfs(server_factory, pool):
    servers = [server_factory.new() for _ in range(2)]
    dir_server = server_factory.new()
    dir_client = pool.get(*dir_server.address)
    dir_client.mkdir("/vvol")
    for s in servers:
        c = pool.get(*s.address)
        c.mkdir("/tssdata")
        c.mkdir("/tssdata/vvol")
    return VersionedFS(
        ChirpMetadataStore(dir_client, "/vvol", FAST),
        pool,
        [s.address for s in servers],
        "/tssdata/vvol",
        placement=RoundRobinPlacement(seed=17),
        policy=FAST,
    )


@pytest.mark.parametrize("seed", [10, 20])
def test_history_matches_model(vfs, seed):
    """The model: per file, an append-only list of byte strings.  Every
    VersionedFS operation must keep the full readable history equal to
    the model's."""
    rng = random.Random(seed)
    model: dict[str, list[bytes]] = {}
    files = ["/a", "/b", "/c"]

    def op_write():
        path = rng.choice(files)
        data = bytes([rng.randrange(256)]) * rng.randrange(1, 300)
        vfs.write_file(path, data)
        model.setdefault(path, []).append(data)

    def op_modify():
        path = rng.choice(files)
        if path not in model:
            return
        base = bytearray(model[path][-1])
        if not base:
            return
        pos = rng.randrange(len(base))
        patch = bytes([rng.randrange(256)]) * rng.randrange(1, 20)
        with vfs.open(path, OpenFlags(read=True, write=True)) as h:
            h.pwrite(patch, pos)
        if len(base) < pos + len(patch):
            base.extend(b"\x00" * (pos + len(patch) - len(base)))
        base[pos : pos + len(patch)] = patch
        model[path].append(bytes(base))

    def op_restore():
        path = rng.choice(files)
        history = model.get(path)
        if not history or len(history) < 2:
            return
        pick = rng.randrange(1, len(history) + 1)
        vfs.restore(path, pick)
        history.append(history[pick - 1])

    def op_check_latest():
        path = rng.choice(files)
        if path in model:
            assert vfs.read_file(path) == model[path][-1]

    def op_check_history():
        path = rng.choice(files)
        if path not in model:
            return
        versions = vfs.versions(path)
        assert len(versions) == len(model[path])
        pick = rng.randrange(len(versions))
        assert (
            vfs.read_version(path, versions[pick].number) == model[path][pick]
        )

    ops = [op_write] * 4 + [op_modify] * 3 + [op_restore] * 2 + [
        op_check_latest,
        op_check_history,
    ] * 2
    for _ in range(60):
        rng.choice(ops)()

    # final: every version of every file matches the model exactly
    for path, history in model.items():
        versions = vfs.versions(path)
        assert len(versions) == len(history)
        for version, expected in zip(versions, history):
            assert vfs.read_version(path, version.number) == expected
