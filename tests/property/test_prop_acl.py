"""Property tests: ACL rights algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.auth.acl import Acl, AclEntry, Rights, format_rights, parse_rights

plain_rights = st.frozensets(st.sampled_from("rwlda"), min_size=0, max_size=5)
reserve_rights = st.frozensets(st.sampled_from("rwlda"), min_size=0, max_size=5)


@st.composite
def rights_objects(draw):
    flags = set(draw(plain_rights))
    reserve = frozenset()
    if draw(st.booleans()):
        flags.add("v")
        reserve = draw(reserve_rights)
    return Rights(frozenset(flags), reserve)


subjects = st.sampled_from(
    [
        "unix:alice",
        "unix:bob",
        "hostname:a.cse.nd.edu",
        "hostname:b.example.com",
        "globus:/O=ND/CN=x",
        "kerberos:x@ND.EDU",
    ]
)

patterns = st.sampled_from(
    [
        "unix:alice",
        "unix:*",
        "hostname:*.cse.nd.edu",
        "globus:/O=ND/*",
        "*",
        "kerberos:*@ND.EDU",
    ]
)


class TestRightsAlgebra:
    @given(rights_objects())
    def test_format_parse_roundtrip(self, rights):
        assert parse_rights(format_rights(rights)) == rights

    @given(rights_objects(), rights_objects())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rights_objects(), rights_objects(), rights_objects())
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(rights_objects())
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(rights_objects(), rights_objects())
    def test_union_only_grows(self, a, b):
        u = a.union(b)
        assert a.flags <= u.flags
        assert b.flags <= u.flags
        assert a.reserve <= u.reserve


class TestAclProperties:
    @given(st.lists(st.tuples(patterns, rights_objects()), max_size=6))
    def test_text_roundtrip(self, entries):
        acl = Acl([AclEntry(p, r) for p, r in entries if r.flags])
        again = Acl.from_text(acl.to_text())
        assert again.to_text() == acl.to_text()

    @given(st.lists(st.tuples(patterns, rights_objects()), max_size=6), subjects)
    def test_entry_order_never_changes_rights(self, entries, subject):
        acl_fwd = Acl([AclEntry(p, r) for p, r in entries])
        acl_rev = Acl([AclEntry(p, r) for p, r in reversed(entries)])
        assert acl_fwd.rights_for(subject) == acl_rev.rights_for(subject)

    @given(st.lists(st.tuples(patterns, rights_objects()), max_size=6), subjects)
    def test_adding_entries_never_revokes(self, entries, subject):
        acl = Acl()
        previous = Rights()
        for pattern, rights in entries:
            acl.entries.append(AclEntry(pattern, rights))
            current = acl.rights_for(subject)
            assert previous.flags <= current.flags
            previous = current

    @given(st.lists(st.tuples(patterns, rights_objects()), max_size=6), subjects)
    def test_reserved_acl_grants_exactly_the_group(self, entries, subject):
        acl = Acl([AclEntry(p, r) for p, r in entries])
        child = acl.reserved_for(subject)
        granted = child.rights_for(subject)
        assert granted.flags == acl.reserve_rights_for(subject)
        assert granted.reserve == frozenset()
        # and nobody else gets anything
        for other in ("unix:stranger", "hostname:evil.com"):
            if other != subject:
                assert not child.rights_for(other).flags
