"""Property tests: GEMS planning invariants and sim-engine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gems.policy import BudgetGreedyPolicy, FixedCountPolicy, RecordSummary
from repro.sim.engine import Environment, Resource

summaries = st.lists(
    st.builds(
        RecordSummary,
        record_id=st.uuids().map(str),
        size=st.integers(1, 10_000),
        live_replicas=st.integers(0, 6),
    ),
    max_size=20,
)


class TestBudgetGreedyInvariants:
    @given(summaries, st.integers(1, 10**6), st.integers(1, 8))
    def test_never_exceeds_budget(self, records, budget, servers):
        policy = BudgetGreedyPolicy(budget)
        plan = policy.plan_additions(records, servers)
        sizes = {r.record_id: r.size for r in records}
        stored = sum(r.size * r.live_replicas for r in records)
        planned = sum(sizes[rid] for rid in plan)
        assert stored + planned <= max(budget, stored)

    @given(summaries, st.integers(1, 10**6), st.integers(1, 8))
    def test_never_plans_dead_or_saturated_records(self, records, budget, servers):
        policy = BudgetGreedyPolicy(budget)
        plan = policy.plan_additions(records, servers)
        by_id = {r.record_id: r for r in records}
        from collections import Counter

        for rid, extra in Counter(plan).items():
            r = by_id[rid]
            assert r.live_replicas > 0
            assert r.live_replicas + extra <= servers

    @given(summaries, st.integers(1, 10**6), st.integers(1, 8))
    def test_plan_is_deterministic(self, records, budget, servers):
        a = BudgetGreedyPolicy(budget).plan_additions(records, servers)
        b = BudgetGreedyPolicy(budget).plan_additions(records, servers)
        assert a == b

    @given(summaries, st.integers(1, 10**6))
    def test_bigger_budget_never_plans_less(self, records, budget):
        small = BudgetGreedyPolicy(budget).plan_additions(records, 8)
        large = BudgetGreedyPolicy(budget * 2).plan_additions(records, 8)
        assert len(large) >= len(small)


class TestFixedCountInvariants:
    @given(summaries, st.integers(1, 6), st.integers(1, 8))
    def test_plan_reaches_exact_target(self, records, copies, servers):
        plan = FixedCountPolicy(copies).plan_additions(records, servers)
        from collections import Counter

        counts = Counter(plan)
        target = min(copies, servers)
        for r in records:
            if r.live_replicas == 0:
                assert counts[r.record_id] == 0
            else:
                assert r.live_replicas + counts[r.record_id] == max(
                    target, r.live_replicas
                )


class TestSimEngineInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.001, 5.0), st.floats(0.0, 3.0)),
            min_size=1,
            max_size=20,
        ),
        st.integers(1, 4),
    )
    def test_resource_never_oversubscribed(self, jobs, capacity):
        env = Environment()
        res = Resource(env, capacity=capacity)
        live = {"now": 0, "max": 0}
        done = []

        def worker(delay, service):
            yield env.timeout(delay)
            req = res.request()
            yield req
            live["now"] += 1
            live["max"] = max(live["max"], live["now"])
            yield env.timeout(service)
            live["now"] -= 1
            res.release()
            done.append(env.now)

        for delay, service in jobs:
            env.process(worker(delay, service))
        env.run()
        assert live["max"] <= capacity
        assert len(done) == len(jobs)
        assert live["now"] == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    def test_time_is_monotone(self, delays):
        env = Environment()
        stamps = []

        def waiter(d):
            yield env.timeout(d)
            stamps.append(env.now)

        for d in delays:
            env.process(waiter(d))
        env.run()
        assert stamps == sorted(stamps)
        assert len(stamps) == len(delays)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 30), st.floats(0.01, 2.0))
    def test_serial_throughput_is_exact(self, jobs, service):
        """n jobs through a capacity-1 station take exactly n*service."""
        env = Environment()
        res = Resource(env, capacity=1)

        def worker():
            req = res.request()
            yield req
            yield env.timeout(service)
            res.release()

        for _ in range(jobs):
            env.process(worker())
        env.run()
        assert env.now == pytest_approx(jobs * service)


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9)
