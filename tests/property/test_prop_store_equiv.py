"""Property test: the CAS store is observationally equivalent to local.

Random sequences of whole-file Chirp operations are replayed against
two live servers -- one on ``--store local``, one on ``--store cas`` --
and every per-op outcome (result value or error status) plus the final
directory tree must match exactly.  This is the strongest form of the
abstraction/resource separation claim: a client cannot tell which
resource is behind the protocol.
"""

from __future__ import annotations

import getpass
import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.auth.methods import AuthContext, ClientCredentials
from repro.chirp.client import ChirpClient
from repro.chirp.protocol import OpenFlags
from repro.chirp.server import FileServer, ServerConfig
from repro.util.errors import ChirpError

_example_ids = itertools.count()

# A small shared namespace so sequences collide with themselves: the
# same paths get created, clobbered, renamed over, and deleted.
NAMES = ("a.txt", "b.bin", "c", "sub/a.txt", "sub/d")
DIRS = ("sub", "d2")

# A few fixed payloads (so dedup triggers) mixed with arbitrary bytes.
payloads = st.one_of(
    st.sampled_from([b"", b"shared-payload", b"x" * 150]),
    st.binary(max_size=200),
)

names = st.sampled_from(NAMES)

operations = st.one_of(
    st.tuples(st.just("put"), names, payloads),
    st.tuples(st.just("get"), names),
    st.tuples(st.just("patch"), names, payloads, st.integers(0, 250)),
    st.tuples(st.just("truncate"), names, st.integers(0, 250)),
    st.tuples(st.just("unlink"), names),
    st.tuples(st.just("rename"), names, names),
    st.tuples(st.just("mkdir"), st.sampled_from(DIRS)),
    st.tuples(st.just("rmdir"), st.sampled_from(DIRS)),
    st.tuples(st.just("stat"), names),
    st.tuples(st.just("checksum"), names),
    st.tuples(st.just("getdir"), st.sampled_from(("", "sub", "d2"))),
)

sequences = st.lists(operations, min_size=1, max_size=10)


@pytest.fixture(scope="module")
def server_pair(tmp_path_factory):
    base = tmp_path_factory.mktemp("equiv")
    challenge_dir = base / "challenges"
    challenge_dir.mkdir()
    auth = AuthContext(enabled=("unix",), unix_challenge_dir=str(challenge_dir))
    owner = f"unix:{getpass.getuser()}"
    credentials = ClientCredentials(methods=("unix",))
    servers, clients = [], []
    for kind in ("local", "cas"):
        root = base / f"export-{kind}"
        root.mkdir()
        server = FileServer(
            ServerConfig(root=str(root), owner=owner, auth=auth, store=kind)
        ).start()
        servers.append(server)
        clients.append(
            ChirpClient(*server.address, credentials=credentials, timeout=10.0)
        )
    yield clients
    for c in clients:
        c.close()
    for s in servers:
        s.stop()


def apply_op(client: ChirpClient, base: str, op: tuple):
    """One operation -> a comparable outcome (value, or error status)."""
    kind, args = op[0], op[1:]
    try:
        if kind == "put":
            return ("ok", client.putfile(f"{base}/{args[0]}", args[1]))
        if kind == "get":
            return ("ok", client.getfile(f"{base}/{args[0]}"))
        if kind == "patch":
            fd = client.open(f"{base}/{args[0]}", OpenFlags(write=True))
            try:
                return ("ok", client.pwrite(fd, args[1], args[2]))
            finally:
                client.close_fd(fd)
        if kind == "truncate":
            return ("ok", client.truncate(f"{base}/{args[0]}", args[1]))
        if kind == "unlink":
            return ("ok", client.unlink(f"{base}/{args[0]}"))
        if kind == "rename":
            return ("ok", client.rename(f"{base}/{args[0]}", f"{base}/{args[1]}"))
        if kind == "mkdir":
            return ("ok", client.mkdir(f"{base}/{args[0]}"))
        if kind == "rmdir":
            return ("ok", client.rmdir(f"{base}/{args[0]}"))
        if kind == "stat":
            s = client.stat(f"{base}/{args[0]}")
            return ("ok", (s.is_dir, s.size))
        if kind == "checksum":
            return ("ok", client.checksum(f"{base}/{args[0]}"))
        if kind == "getdir":
            return ("ok", sorted(client.getdir(f"{base}/{args[0]}".rstrip("/"))))
        raise AssertionError(f"unknown op {kind}")
    except ChirpError as exc:
        return ("err", exc.status)


def observable_tree(client: ChirpClient, vdir: str) -> dict:
    """The client-visible state under ``vdir``: names, sizes, content."""
    out = {}
    for name in sorted(client.getdir(vdir)):
        path = f"{vdir}/{name}"
        s = client.stat(path)
        if s.is_dir:
            out[name] = ("dir", observable_tree(client, path))
        else:
            out[name] = ("file", s.size, client.checksum(path))
    return out


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seq=sequences)
def test_cas_indistinguishable_from_local(server_pair, seq):
    local, cas = server_pair
    base = f"/e{next(_example_ids)}"
    for client in (local, cas):
        client.mkdir(base)
    for op in seq:
        outcomes = [apply_op(c, base, op) for c in (local, cas)]
        assert outcomes[0] == outcomes[1], f"divergence on {op!r}: {outcomes}"
    assert observable_tree(local, base) == observable_tree(cas, base)
