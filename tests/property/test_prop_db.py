"""Property tests: the metadata DB against a dict model, and durability."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule, invariant

from repro.db.engine import MetadataDB
from repro.db.query import Condition, Query

record_values = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=10),
    st.booleans(),
)
record_bodies = st.dictionaries(
    st.sampled_from(["kind", "size", "name", "state"]), record_values, max_size=4
)


class DbModelMachine(RuleBasedStateMachine):
    """The engine must behave exactly like a dict of dicts."""

    def __init__(self):
        super().__init__()
        self.db = MetadataDB(None, indexes=("kind", "state"))
        self.model: dict[str, dict] = {}
        self.counter = 0

    @rule(body=record_bodies)
    def insert(self, body):
        self.counter += 1
        rid = f"r{self.counter}"
        record = dict(body, id=rid)
        self.db.insert(record)
        self.model[rid] = record

    @rule(body=record_bodies)
    def update_existing(self, body):
        if not self.model:
            return
        rid = sorted(self.model)[self.counter % len(self.model)]
        self.db.update(rid, body)
        self.model[rid] = {**self.model[rid], **body, "id": rid}

    @rule()
    def delete_existing(self):
        if not self.model:
            return
        rid = sorted(self.model)[self.counter % len(self.model)]
        assert self.db.delete(rid)
        del self.model[rid]

    @rule(value=record_values)
    def query_indexed_equality(self, value):
        got = {r["id"] for r in self.db.query(Query.where(kind=value))}
        expected = {
            rid for rid, r in self.model.items() if r.get("kind") == value
        }
        assert got == expected

    @rule(value=st.integers(-1000, 1000))
    def query_range(self, value):
        q = Query((Condition("size", "ge", value),))
        got = {r["id"] for r in self.db.query(q)}
        expected = {
            rid
            for rid, r in self.model.items()
            if isinstance(r.get("size"), (int, float))
            and not isinstance(r.get("size"), bool)
            and r["size"] >= value
        }
        # booleans are ints in Python; mirror the engine's behaviour
        expected |= {
            rid
            for rid, r in self.model.items()
            if isinstance(r.get("size"), bool) and r["size"] >= value
        }
        assert got == expected

    @invariant()
    def same_size(self):
        assert len(self.db) == len(self.model)

    @invariant()
    def gets_agree(self):
        for rid, expected in self.model.items():
            assert self.db.get(rid) == expected


TestDbModel = DbModelMachine.TestCase


class TestDurabilityProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["put", "del"]), record_bodies),
            max_size=30,
        )
    )
    def test_reopen_equals_live_state(self, ops):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            model = {}
            with MetadataDB(tmp) as db:
                for i, (op, body) in enumerate(ops):
                    rid = f"r{i % 7}"
                    if op == "put":
                        db.insert(dict(body, id=rid))
                        model[rid] = dict(body, id=rid)
                    else:
                        db.delete(rid)
                        model.pop(rid, None)
            with MetadataDB(tmp) as db2:
                assert {r["id"]: r for r in db2.all_records()} == model
