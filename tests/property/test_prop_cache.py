"""Property test: a private-mode cache is invisible to the reader.

Random sequences of pread/pwrite/ftruncate are applied to a
:class:`CachedFileHandle` wrapping a :class:`LocalFilesystem` handle and
to an uncached reference handle on a second copy of the file; every
observable result must match byte-for-byte.  Readahead runs in
synchronous mode so the schedule is deterministic; a tiny block size and
capacity force block splits and LRU evictions constantly, which is where
the bugs would live.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.handle import CachedFileHandle
from repro.cache.manager import CacheManager, file_key
from repro.cache.policy import CachePolicy
from repro.chirp.protocol import OpenFlags
from repro.core.localfs import LocalFilesystem

BS = 8  # tiny blocks: every multi-byte read crosses boundaries

ops = st.lists(
    st.one_of(
        st.tuples(st.just("pread"), st.integers(0, 80), st.integers(0, 96)),
        st.tuples(st.just("pwrite"), st.binary(max_size=40), st.integers(0, 64)),
        st.tuples(st.just("truncate"), st.integers(0, 64), st.none()),
    ),
    max_size=40,
)


class TestPrivateCacheEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(initial=st.binary(max_size=96), operations=ops)
    def test_cached_reads_match_uncached(self, tmp_path_factory, initial, operations):
        root = tmp_path_factory.mktemp("cachefs")
        fs = LocalFilesystem(str(root))
        fs.write_file("/cached.bin", initial)
        fs.write_file("/plain.bin", initial)

        policy = CachePolicy(
            mode="private",
            block_size=BS,
            capacity_bytes=4 * BS,  # tiny: constant LRU eviction
            readahead_blocks=2,
            readahead_min_run=2,
        )
        cache = CacheManager(policy, synchronous_readahead=True)
        flags = OpenFlags(read=True, write=True)
        cached = CachedFileHandle(
            fs.open("/cached.bin", flags), cache, file_key("p", 0, "/cached.bin")
        )
        plain = fs.open("/plain.bin", flags)
        try:
            for op, a, b in operations:
                if op == "pread":
                    assert cached.pread(a, b) == plain.pread(a, b)
                elif op == "pwrite":
                    assert cached.pwrite(a, b) == plain.pwrite(a, b)
                else:
                    cached.ftruncate(a)
                    plain.ftruncate(a)
            size = plain.fstat().size
            assert cached.pread(size + BS, 0) == plain.pread(size + BS, 0)
        finally:
            cached.close()
            plain.close()
        cache.close()
