"""Property tests: AdapterFile behaves like a local file.

Random sequences of read/write/seek/truncate are applied to an
:class:`AdapterFile` over a :class:`LocalFilesystem` handle and to a
reference ``io.BytesIO``; observable behaviour must match byte-for-byte.
(LocalFilesystem shares the handle machinery with the remote
abstractions, so this pins the whole file-object layer cheaply.)
"""

import io
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapter.fileobj import AdapterFile
from repro.chirp.protocol import OpenFlags
from repro.core.localfs import LocalFilesystem

ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.binary(max_size=64)),
        st.tuples(st.just("read"), st.integers(0, 128)),
        st.tuples(st.just("seek_set"), st.integers(0, 256)),
        st.tuples(st.just("seek_cur"), st.integers(-64, 64)),
        st.tuples(st.just("seek_end"), st.integers(-64, 0)),
        st.tuples(st.just("truncate"), st.integers(0, 128)),
        st.tuples(st.just("tell"), st.none()),
    ),
    max_size=30,
)


def apply(fobj, op, arg):
    """Apply one op; returns an observable value or raises."""
    if op == "write":
        return fobj.write(arg)
    if op == "read":
        return fobj.read(arg)
    if op == "seek_set":
        return fobj.seek(arg, os.SEEK_SET)
    if op == "seek_cur":
        try:
            return fobj.seek(arg, os.SEEK_CUR)
        except (OSError, ValueError):
            return "negative-seek"
    if op == "seek_end":
        try:
            return fobj.seek(arg, os.SEEK_END)
        except (OSError, ValueError):
            return "negative-seek"
    if op == "truncate":
        return fobj.truncate(arg)
    if op == "tell":
        return fobj.tell()
    raise AssertionError(op)


class TestFileObjectEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops, initial=st.binary(max_size=64))
    def test_matches_bytesio(self, ops, initial):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            fs = LocalFilesystem(tmp)
            fs.write_file("/f.bin", initial)
            handle = fs.open("/f.bin", OpenFlags(read=True, write=True))
            ours = AdapterFile(handle, "/f.bin", readable=True, writable=True)
            # The reference is a real unbuffered file, not BytesIO --
            # BytesIO diverges from POSIX (truncate past EOF does not
            # extend, negative relative seeks raise differently).
            reference = tempfile.TemporaryFile(buffering=0)
            reference.write(initial)
            reference.seek(0)
            try:
                for op, arg in ops:
                    got = apply(ours, op, arg)
                    expected = apply(reference, op, arg)
                    assert got == expected, (op, arg)
                # final contents agree
                ours.seek(0)
                reference.seek(0)
                assert ours.read() == reference.read()
            finally:
                ours.close()
                reference.close()

    @settings(max_examples=30, deadline=None)
    @given(chunks=st.lists(st.binary(min_size=1, max_size=50), max_size=10))
    def test_append_mode_concatenates(self, chunks):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            fs = LocalFilesystem(tmp)
            fs.write_file("/log", b"")
            expected = b""
            for chunk in chunks:
                handle = fs.open("/log", OpenFlags(read=True, write=True, append=True))
                f = AdapterFile(handle, "/log", readable=True, writable=True, append=True)
                f.write(chunk)
                f.close()
                expected += chunk
            assert fs.read_file("/log") == expected

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(max_size=200), block=st.integers(1, 64))
    def test_buffered_reader_sees_identical_stream(self, data, block):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            fs = LocalFilesystem(tmp)
            fs.write_file("/f", data)
            handle = fs.open("/f", OpenFlags(read=True))
            raw = AdapterFile(handle, "/f", readable=True, writable=False)
            reader = io.BufferedReader(raw, buffer_size=block)
            assert reader.read() == data
            reader.close()
