"""Property tests: the striping layout against a byte-level reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stripefs import map_extent, stripe_sizes_for_length

params = st.tuples(
    st.integers(1, 6),  # n_stripes
    st.integers(1, 64),  # stripe_size
)


class ReferenceStripes:
    """Reference model: store logical bytes by brute-force mapping."""

    def __init__(self, n, size):
        self.n = n
        self.size = size
        self.stripes = [bytearray() for _ in range(n)]

    def _locate(self, logical: int) -> tuple[int, int]:
        chunk = logical // self.size
        return chunk % self.n, (chunk // self.n) * self.size + logical % self.size

    def write(self, offset: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            stripe, inner = self._locate(offset + i)
            buf = self.stripes[stripe]
            if len(buf) < inner + 1:
                buf.extend(b"\x00" * (inner + 1 - len(buf)))
            buf[inner] = byte

    def read(self, offset: int, length: int) -> bytes:
        out = bytearray()
        for i in range(length):
            stripe, inner = self._locate(offset + i)
            buf = self.stripes[stripe]
            if inner >= len(buf):
                break
            out.append(buf[inner])
        return bytes(out)


class TestMapExtent:
    @given(params, st.integers(0, 500), st.integers(0, 300))
    def test_pieces_tile_the_extent_exactly(self, p, offset, length):
        n, size = p
        pieces = list(map_extent(offset, length, n, size))
        assert sum(piece for _, _, piece, _ in pieces) == length
        position = offset
        for _stripe, _inner, piece, logical in pieces:
            assert logical == position
            position += piece
        assert position == offset + length

    @given(params, st.integers(0, 500), st.integers(1, 300))
    def test_pieces_never_cross_stripe_chunks(self, p, offset, length):
        n, size = p
        for stripe, inner, piece, logical in map_extent(offset, length, n, size):
            assert 0 <= stripe < n
            assert piece <= size
            # a piece stays inside one stripe-size block of its stripe file
            assert inner // size == (inner + piece - 1) // size

    @given(params, st.integers(0, 2000))
    def test_mapping_agrees_with_reference(self, p, logical):
        n, size = p
        ref = ReferenceStripes(n, size)
        stripe, inner = ref._locate(logical)
        pieces = list(map_extent(logical, 1, n, size))
        assert pieces[0][0] == stripe
        assert pieces[0][1] == inner

    @given(params)
    def test_negative_inputs_rejected(self, p):
        n, size = p
        import pytest

        with pytest.raises(ValueError):
            list(map_extent(-1, 5, n, size))
        with pytest.raises(ValueError):
            list(map_extent(0, -5, n, size))


class TestStripeSizes:
    @given(params, st.integers(0, 5000))
    def test_sizes_sum_to_length(self, p, length):
        n, size = p
        assert sum(stripe_sizes_for_length(length, n, size)) == length

    @given(params, st.integers(0, 5000))
    def test_sizes_match_reference(self, p, length):
        n, size = p
        ref = ReferenceStripes(n, size)
        ref.write(0, b"x" * length)
        assert stripe_sizes_for_length(length, n, size) == [
            len(buf) for buf in ref.stripes
        ]

    @given(params, st.integers(0, 5000))
    def test_sizes_are_balanced(self, p, length):
        n, size = p
        sizes = stripe_sizes_for_length(length, n, size)
        assert max(sizes) - min(sizes) <= size


class TestScatterGather:
    @settings(max_examples=60, deadline=None)
    @given(
        params,
        st.lists(
            st.tuples(st.integers(0, 400), st.binary(min_size=1, max_size=120)),
            max_size=8,
        ),
    )
    def test_write_read_matches_flat_file(self, p, writes):
        """Scatter *dense* writes through the layout, then gather reads:
        the result must equal a plain flat byte buffer.  (Sparse logical
        files are a documented striping limitation -- see the module
        docstring and ``test_sparse_hole_reads_short`` below -- so write
        offsets are clamped to the current end of file.)"""
        n, size = p
        ref = ReferenceStripes(n, size)
        flat = bytearray()
        for offset, data in writes:
            offset = min(offset, len(flat))  # densify
            if len(flat) < offset + len(data):
                flat.extend(b"\x00" * (offset + len(data) - len(flat)))
            flat[offset : offset + len(data)] = data
            # scatter through map_extent, as StripedHandle.pwrite does
            for stripe, inner, piece, logical in map_extent(offset, len(data), n, size):
                start = logical - offset
                chunk = data[start : start + piece]
                buf = ref.stripes[stripe]
                if len(buf) < inner + piece:
                    buf.extend(b"\x00" * (inner + piece - len(buf)))
                buf[inner : inner + piece] = chunk
        # gather the whole logical file back
        total = len(flat)
        out = bytearray()
        for stripe, inner, piece, _ in map_extent(0, total, n, size):
            out.extend(ref.stripes[stripe][inner : inner + piece])
        assert bytes(out) == bytes(flat)
