"""Property tests: the software chroot never lets a path escape."""

import os

from hypothesis import given, assume
from hypothesis import strategies as st

from repro.util.paths import PathEscapeError, confine, normalize_virtual

# Path-ish strings: realistic component names plus traversal attacks.
component = st.one_of(
    st.sampled_from(["..", ".", "etc", "passwd", "f.txt", "", "..."]),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F
        ),
        min_size=1,
        max_size=12,
    ),
)

path_strings = st.lists(component, min_size=0, max_size=8).map(
    lambda parts: "/" + "/".join(parts)
)

nasty_strings = st.text(
    alphabet=st.characters(blacklist_characters="\\\x00", codec="utf-8"),
    min_size=0,
    max_size=64,
)


class TestNormalizeVirtual:
    @given(path_strings)
    def test_always_absolute_and_normal(self, path):
        norm = normalize_virtual(path)
        assert norm.startswith("/")
        assert ".." not in norm.split("/")
        assert "//" not in norm or norm == "/"

    @given(path_strings)
    def test_idempotent(self, path):
        norm = normalize_virtual(path)
        assert normalize_virtual(norm) == norm

    @given(nasty_strings)
    def test_arbitrary_text_is_normalized_or_rejected(self, text):
        try:
            norm = normalize_virtual(text)
        except PathEscapeError:
            return
        assert norm.startswith("/")
        assert ".." not in norm.split("/")


class TestConfine:
    @given(path_strings)
    def test_result_stays_under_root(self, path):
        root = os.path.realpath("/tmp")
        real = confine(root, path, check_symlinks=False)
        assert real == root or real.startswith(root + os.sep)

    @given(nasty_strings)
    def test_arbitrary_text_confined_or_rejected(self, text):
        root = os.path.realpath("/tmp")
        try:
            real = confine(root, text, check_symlinks=False)
        except PathEscapeError:
            return
        assert real == root or real.startswith(root + os.sep)
