"""Property tests: the wire codec must round-trip anything."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.wire import decode_token, encode_token, pack_line, unpack_line

token_text = st.text(min_size=0, max_size=200)


class TestTokenRoundtrip:
    @given(token_text)
    def test_roundtrip_any_text(self, text):
        assert decode_token(encode_token(text)) == text

    @given(token_text)
    def test_wire_form_is_framing_safe(self, text):
        wire = encode_token(text)
        assert " " not in wire
        assert "\n" not in wire
        assert "\r" not in wire
        assert wire  # never empty: empty token encodes as '%'
        wire.encode("ascii")  # always pure ASCII

    @given(st.lists(token_text, min_size=0, max_size=10))
    def test_line_roundtrip(self, tokens):
        assert unpack_line(pack_line(*tokens)) == tokens

    @given(st.lists(st.integers(-(2**62), 2**62), min_size=1, max_size=10))
    def test_integer_tokens_roundtrip_as_decimal(self, numbers):
        tokens = unpack_line(pack_line(*numbers))
        assert [int(t) for t in tokens] == numbers

    @given(token_text, token_text)
    def test_distinct_tokens_stay_distinct(self, a, b):
        if a != b:
            assert encode_token(a) != encode_token(b)
