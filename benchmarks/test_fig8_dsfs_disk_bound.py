"""Figure 8: DSFS scalability, disk-bound regime.

Paper: "1280 files of 10 MB are stored in a DSFS with 1 to 8 servers.
In all configurations, there is not enough buffer cache to keep the data
in memory.  A single server is able to sustain 10 MB/s, the raw disk
throughput.  As servers are added, the throughput increases roughly
linearly with the number of servers."
"""

from repro.sim.dsfs_sim import run_scalability_sweep
from repro.sim.params import MB, PAPER_PARAMS

SERVERS = range(1, 9)


def compute_figure():
    return run_scalability_sweep(
        n_files=1280,
        file_bytes=10 * MB,
        server_counts=SERVERS,
        duration=60.0,
        warmup=30.0,
    )


def test_fig8_dsfs_disk_bound(benchmark, figure):
    results = benchmark.pedantic(compute_figure, rounds=1, iterations=1)

    report = figure("Figure 8", "DSFS Scalability: Disk-Bound (12.8 GB dataset)")
    report.header(f"{'servers':>8} {'MB/s':>9} {'MB/s per server':>16} {'cache hit':>10}")
    for r in results:
        report.row(
            f"{r.n_servers:>8} {r.throughput_mb_s:9.1f} "
            f"{r.throughput_mb_s / r.n_servers:16.1f} {r.cache_hit_rate:10.2f}"
        )
    report.series(
        "throughput_mb_s", {r.n_servers: r.throughput_mb_s for r in results}
    )

    by_n = {r.n_servers: r for r in results}
    disk = PAPER_PARAMS.disk_bw / MB
    # a single server sustains roughly the raw disk rate
    assert 0.7 * disk <= by_n[1].throughput_mb_s <= 1.8 * disk
    # throughput grows ~linearly: each server adds about one disk's worth
    for n in SERVERS:
        per_server = by_n[n].throughput_mb_s / n
        assert 0.7 * disk <= per_server <= 1.8 * disk
    assert by_n[8].throughput_mb_s >= 6 * by_n[1].throughput_mb_s
    # never near the network ceilings: the disks are the constraint
    assert by_n[8].throughput_mb_s < 0.6 * PAPER_PARAMS.backplane_bw / MB
    # and caches never hold the working set
    assert all(r.cache_hit_rate < 0.45 for r in results)
