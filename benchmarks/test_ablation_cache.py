"""Ablation: what does the client-side cache buy over a slow link?

The paper's TSS caches nothing, which is the right default for shared
volumes -- and leaves performance on the table for single-writer ones.
This ablation measures the cache subsystem over a ~1 ms loopback link
(the fault-injection proxy adds per-chunk latency in both directions):

- **warm reread**: a file read twice through a ``private``-mode cache;
  the second pass must not touch the wire at all,
- **sequential readahead**: a block-at-a-time sequential scan with the
  prefetch pipeline on vs off; the window fetches overlap the reader's
  consumption, so the scan approaches one round trip per *window*
  instead of one per block.

Criteria (DESIGN.md shape rules, not absolute numbers): warm reread at
least 5x faster than the uncached read; readahead at least 1.5x faster
than the same cache without readahead.

Set ``CACHE_BENCH_QUICK=1`` for the CI smoke configuration (smaller file,
same assertions).  Results land in ``benchmarks/results/BENCH_cache.json``.
"""

from __future__ import annotations

import getpass
import json
import os
import time

import pytest

from repro.auth.methods import AuthContext, ClientCredentials
from repro.cache.manager import CacheManager, file_key
from repro.cache.handle import CachedFileHandle
from repro.cache.policy import CachePolicy
from repro.chirp.client import ChirpClient
from repro.chirp.protocol import OpenFlags
from repro.chirp.server import FileServer, ServerConfig
from repro.core.cfs import CFS
from repro.transport.faults import FaultPlan, FaultScript, FaultyListener

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

QUICK = bool(os.environ.get("CACHE_BENCH_QUICK"))

LINK_LATENCY = 0.001  # seconds added per forwarded chunk, each direction
BLOCK = 16 * 1024  # cache blocks; several per proxy chunk
FILE_BLOCKS = 32 if QUICK else 96  # sequential-scan file size, in blocks


@pytest.fixture(scope="module")
def slow_link(tmp_path_factory):
    """A live file server reachable only through a ~1 ms/chunk proxy."""
    tmp = tmp_path_factory.mktemp("cachebench")
    (tmp / "export").mkdir()
    challenge = tmp / "challenge"
    challenge.mkdir()
    auth = AuthContext(enabled=("unix",), unix_challenge_dir=str(challenge))
    server = FileServer(
        ServerConfig(
            root=str(tmp / "export"), owner=f"unix:{getpass.getuser()}", auth=auth
        )
    ).start()
    proxy = FaultyListener(
        server.address, FaultPlan(default=FaultScript(latency=LINK_LATENCY))
    ).start()
    seed = ChirpClient(
        *server.address, credentials=ClientCredentials(methods=("unix",))
    )
    data = bytes(i % 251 for i in range(FILE_BLOCKS * BLOCK))
    seed.putfile("/scan.bin", data)
    seed.close()
    yield {"proxy": proxy, "data": data, "server": server}
    proxy.stop()
    server.stop()


def open_stack(slow_link, policy: CachePolicy | None):
    """A CFS over the proxied link, optionally cached."""
    cache = CacheManager(policy) if policy is not None else None
    client = ChirpClient(
        *slow_link["proxy"].address,
        credentials=ClientCredentials(methods=("unix",)),
        cache=cache,
    )
    fs = CFS(client, cache=cache)
    return fs, client, cache


def timed_read(fs, length: int, chunk: int) -> float:
    """Scan ``/scan.bin`` front to back in ``chunk``-sized preads."""
    start = time.perf_counter()
    with fs.open("/scan.bin", OpenFlags(read=True)) as h:
        offset = 0
        while offset < length:
            got = h.pread(chunk, offset)
            if not got:
                break
            offset += len(got)
    assert offset == length
    return time.perf_counter() - start


class TestCacheAblation:
    def test_warm_reread_and_readahead(self, slow_link, figure):
        data = slow_link["data"]
        results: dict = {"link_latency_s": LINK_LATENCY, "quick": QUICK}

        # -- uncached baseline: every byte crosses the slow link twice --
        fs, client, _ = open_stack(slow_link, None)
        uncached_1 = timed_read(fs, len(data), BLOCK)
        uncached_2 = timed_read(fs, len(data), BLOCK)
        client.close()
        uncached = min(uncached_1, uncached_2)

        # -- private cache, readahead off: warm pass is local ------------
        no_ra = CachePolicy(
            mode="private",
            block_size=BLOCK,
            capacity_bytes=4 * len(data),
            readahead_blocks=0,
        )
        fs, client, cache = open_stack(slow_link, no_ra)
        cold_no_ra = timed_read(fs, len(data), BLOCK)
        warm = timed_read(fs, len(data), BLOCK)
        warm_hits = cache.blocks.snapshot()["hits"]
        client.close()
        cache.close()

        # -- private cache, readahead on: cold scan is pipelined ---------
        with_ra = CachePolicy(
            mode="private",
            block_size=BLOCK,
            capacity_bytes=4 * len(data),
            readahead_blocks=8,
            readahead_min_run=2,
            readahead_workers=2,
        )
        fs, client, cache = open_stack(slow_link, with_ra)
        cold_ra = timed_read(fs, len(data), BLOCK)
        ra_stats = cache.snapshot()["readahead"]
        client.close()
        cache.close()

        results.update(
            uncached_s=uncached,
            cold_no_readahead_s=cold_no_ra,
            warm_s=warm,
            cold_readahead_s=cold_ra,
            warm_speedup=uncached / warm,
            readahead_speedup=cold_no_ra / cold_ra,
            readahead=ra_stats,
        )

        report = figure("BENCH cache", "Client cache over a 1 ms/chunk link")
        report.header(f"sequential {len(data) >> 10} KiB scan, {BLOCK >> 10} KiB reads")
        report.row(f"uncached             {uncached * 1e3:9.1f} ms")
        report.row(f"cold, no readahead   {cold_no_ra * 1e3:9.1f} ms")
        report.row(f"cold, readahead x8   {cold_ra * 1e3:9.1f} ms")
        report.row(f"warm reread          {warm * 1e3:9.1f} ms")
        report.row(f"warm speedup         {uncached / warm:9.1f} x")
        report.row(f"readahead speedup    {cold_no_ra / cold_ra:9.1f} x")
        report.series("cache_ablation", results)

        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, "BENCH_cache.json"), "w") as f:
            json.dump(results, f, indent=2)

        # The warm pass touched the wire for nothing but open/close.
        assert warm_hits >= FILE_BLOCKS
        assert uncached / warm >= 5.0, f"warm reread only {uncached / warm:.1f}x"
        assert cold_no_ra / cold_ra >= 1.5, (
            f"readahead only {cold_no_ra / cold_ra:.2f}x"
        )
