"""Ablation: one shared connection for control+data vs FTP-style churn.

Paper (section 4): "All file data is carried over the same connection as
is used for control.  This allows the underlying TCP connection to reach
and maintain the maximum needed window size.  In contrast, protocols
such as FTP separate data and control, resulting in multiple TCP slow
starts when multiple files must be transmitted."

On loopback there is no slow start, but connection churn still pays the
TCP handshake plus the full authentication dialogue per file -- the same
architectural cost, measurable live.
"""

import time

import getpass

import pytest

from repro.auth.methods import AuthContext, ClientCredentials
from repro.chirp.client import ChirpClient
from repro.chirp.server import FileServer, ServerConfig

N_FILES = 40
FILE_BYTES = 16 * 1024


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("reuse")
    (tmp / "export").mkdir()
    challenge = tmp / "challenge"
    challenge.mkdir()
    auth = AuthContext(enabled=("unix",), unix_challenge_dir=str(challenge))
    srv = FileServer(
        ServerConfig(root=str(tmp / "export"), owner=f"unix:{getpass.getuser()}", auth=auth)
    ).start()
    client = ChirpClient(
        *srv.address, credentials=ClientCredentials(methods=("unix",))
    )
    for i in range(N_FILES):
        client.putfile(f"/f{i}", b"d" * FILE_BYTES)
    client.close()
    yield srv
    srv.stop()


def fetch_over_one_connection(server) -> float:
    creds = ClientCredentials(methods=("unix",))
    start = time.perf_counter()
    client = ChirpClient(*server.address, credentials=creds)
    for i in range(N_FILES):
        assert len(client.getfile(f"/f{i}")) == FILE_BYTES
    client.close()
    return time.perf_counter() - start


def fetch_with_connection_per_file(server) -> float:
    creds = ClientCredentials(methods=("unix",))
    start = time.perf_counter()
    for i in range(N_FILES):
        client = ChirpClient(*server.address, credentials=creds)
        assert len(client.getfile(f"/f{i}")) == FILE_BYTES
        client.close()
    return time.perf_counter() - start


def test_ablation_connection_reuse(benchmark, server, figure):
    shared = benchmark.pedantic(
        fetch_over_one_connection, args=(server,), rounds=3, iterations=1
    )
    churned = fetch_with_connection_per_file(server)

    report = figure(
        "Ablation connection reuse",
        f"Fetch {N_FILES} files: shared connection vs per-file connections",
    )
    report.header("strategy                    seconds")
    report.row(f"one shared connection     {shared:9.3f}")
    report.row(f"connection per file       {churned:9.3f}")
    report.row(f"churn penalty             {churned/shared:8.1f}x")
    report.series("seconds", {"shared": shared, "per_file": churned})

    # the design choice must matter by an integer factor even on loopback
    assert churned > 2 * shared
