"""Section 8 table: SP5 under Unix / LAN-NFS / LAN-TSS / WAN-TSS.

Paper table (reproduced from [13])::

    configuration   init time        time/event
    1  Unix          446 +-  46 s     64 s
    2  LAN / NFS    4464 +- 172 s    113 s
    3  LAN / TSS    4505 +- 155 s    113 s
    4  WAN / TSS    6275 +- 330 s     88 s

"The time to initialize SP5 increases by an order of magnitude no matter
what the connection method.  However, once initialized, simulation
events ... can be processed within a factor of two performance.  (Note
that the WAN/TSS case processes single events faster than LAN/TSS due to
a slightly faster processor.)"
"""

from repro.sim.sp5 import run_sp5_table

PAPER = {
    "unix": (446, 64),
    "lan-nfs": (4464, 113),
    "lan-tss": (4505, 113),
    "wan-tss": (6275, 88),
}


def test_sp5_table(benchmark, figure):
    rows = benchmark.pedantic(run_sp5_table, rounds=1, iterations=1)

    report = figure("SP5 Table", "SP5 Initialization and Per-Event Time")
    report.header(
        f"{'configuration':<14} {'init (model)':>13} {'init (paper)':>13} "
        f"{'event (model)':>14} {'event (paper)':>14}"
    )
    for r in rows:
        p_init, p_event = PAPER[r.config]
        report.row(
            f"{r.config:<14} {r.init_time:12.0f}s {p_init:12d}s "
            f"{r.time_per_event:13.1f}s {p_event:13d}s"
        )
        report.series(
            r.config,
            {
                "init_model_s": r.init_time,
                "init_paper_s": p_init,
                "event_model_s": r.time_per_event,
                "event_paper_s": p_event,
            },
        )

    by = {r.config: r for r in rows}
    # init jumps ~10x going remote, identically for NFS and TSS
    assert 5 <= by["lan-nfs"].init_time / by["unix"].init_time <= 15
    assert abs(by["lan-nfs"].init_time - by["lan-tss"].init_time) < 0.1 * by["lan-nfs"].init_time
    # WAN adds a surcharge but stays the same order of magnitude
    assert by["lan-tss"].init_time < by["wan-tss"].init_time < 2 * by["lan-tss"].init_time
    # events stay within 2x of local; the WAN node's faster CPU wins back time
    assert by["lan-tss"].time_per_event < 2 * by["unix"].time_per_event
    assert by["wan-tss"].time_per_event < by["lan-tss"].time_per_event
    # model lands near the published magnitudes
    for config, (p_init, p_event) in PAPER.items():
        assert abs(by[config].init_time - p_init) / p_init < 0.30
        assert abs(by[config].time_per_event - p_event) / p_event < 0.30
