"""Supplementary: live microbenchmarks of the actual implementation.

The calibrated models regenerate the paper's 2005 curves; this file
measures *our real code* over loopback TCP so the protocol-structure
claims can be checked on living sockets, not just in a model:

- Chirp needs one round trip where the NFS-like baseline needs
  per-component lookups, so Chirp stat/open should be faster;
- Chirp streams whole files over one connection while the baseline moves
  4 KB per RPC, so Chirp bulk bandwidth should win by a wide margin;
- interposition (our ptrace stand-in) slows local syscalls by a large
  factor, mirroring Figure 3's order of magnitude.

Absolute values depend on this machine; assertions are ordering-only.
"""

import os

import getpass

import pytest

from repro.adapter.adapter import Adapter
from repro.adapter.interpose import interposed
from repro.auth.methods import AuthContext, ClientCredentials
from repro.baselines.nfslike import NfsLikeClient, NfsLikeServer
from repro.chirp.client import ChirpClient
from repro.chirp.server import FileServer, ServerConfig

PAYLOAD = b"x" * 8192
BULK = b"y" * (4 * 1024 * 1024)


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("live")
    (tmp / "chirp").mkdir()
    (tmp / "nfs").mkdir()
    challenge = tmp / "challenge"
    challenge.mkdir()
    auth = AuthContext(enabled=("unix",), unix_challenge_dir=str(challenge))
    chirp_server = FileServer(
        ServerConfig(root=str(tmp / "chirp"), owner=f"unix:{getpass.getuser()}", auth=auth)
    ).start()
    nfs_server = NfsLikeServer(str(tmp / "nfs")).start()
    chirp = ChirpClient(
        *chirp_server.address, credentials=ClientCredentials(methods=("unix",))
    )
    nfs = NfsLikeClient(*nfs_server.address)
    # a deep-ish path so lookup costs are visible, as in the figure
    chirp.mkdir("/a")
    chirp.mkdir("/a/b")
    chirp.putfile("/a/b/f.bin", PAYLOAD)
    chirp.putfile("/bulk.bin", BULK)
    nfs.mkdir("/a")
    nfs.mkdir("/a/b")
    nfs.write_file("/a/b/f.bin", PAYLOAD)
    yield {"chirp": chirp, "nfs": nfs, "tmp": tmp}
    chirp.close()
    nfs.close()
    chirp_server.stop()
    nfs_server.stop()


class TestLiveLatency:
    def test_chirp_stat(self, benchmark, live):
        benchmark(live["chirp"].stat, "/a/b/f.bin")

    def test_nfslike_stat(self, benchmark, live):
        benchmark(live["nfs"].getattr, "/a/b/f.bin")

    def test_chirp_read_8k(self, benchmark, live):
        chirp = live["chirp"]
        fd = chirp.open("/a/b/f.bin", "r")
        benchmark(chirp.pread, fd, 8192, 0)
        chirp.close_fd(fd)

    def test_nfslike_read_8k(self, benchmark, live):
        nfs = live["nfs"]
        fh = nfs.lookup("/a/b/f.bin")

        def read_8k():
            nfs.read_block(fh, 0)
            nfs.read_block(fh, 4096)

        benchmark(read_8k)

    def test_stat_round_trips_live(self, benchmark, live, figure):
        """The protocol claim behind Figure 4: Chirp resolves a stat in
        ONE round trip; the NFS shape needs a LOOKUP per path component
        plus a GETATTR.  Round trips are counted on the live wire.

        (Wall-clock is reported but not asserted: on loopback the RTT is
        microseconds, so time is dominated by server-side work -- e.g.
        our ACL checks -- not by round trips.  On a real LAN the count is
        what sets the latency, which is what the Figure 4 model asserts.)
        """
        import time

        def count_rpcs(stream, fn):
            sent = {"n": 0}
            original = stream.write_line

            def counting(*tokens):
                sent["n"] += 1
                return original(*tokens)

            stream.write_line = counting
            try:
                fn()
            finally:
                stream.write_line = original
            return sent["n"]

        chirp_rpcs = benchmark.pedantic(
            lambda: count_rpcs(
                live["chirp"]._stream, lambda: live["chirp"].stat("/a/b/f.bin")
            ),
            rounds=1,
            iterations=1,
        )
        nfs_rpcs = count_rpcs(
            live["nfs"]._stream, lambda: live["nfs"].getattr("/a/b/f.bin")
        )

        def measure(fn, n=200):
            start = time.perf_counter()
            for _ in range(n):
                fn()
            return (time.perf_counter() - start) / n

        chirp_t = measure(lambda: live["chirp"].stat("/a/b/f.bin"))
        nfs_t = measure(lambda: live["nfs"].getattr("/a/b/f.bin"))
        report = figure("Live latency", "Loopback stat: round trips and time")
        report.header("path              round trips   latency")
        report.row(f"chirp stat     {chirp_rpcs:10d} {chirp_t*1e6:12.1f} us")
        report.row(f"nfs-like stat  {nfs_rpcs:10d} {nfs_t*1e6:12.1f} us")
        report.series(
            "stat", {"chirp_rpcs": chirp_rpcs, "nfslike_rpcs": nfs_rpcs,
                     "chirp_us": chirp_t * 1e6, "nfslike_us": nfs_t * 1e6},
        )
        assert chirp_rpcs == 1
        assert nfs_rpcs == 4  # 3 lookups (/a, /a/b, f.bin) + 1 getattr
        assert chirp_rpcs < nfs_rpcs


class TestLiveBandwidth:
    def test_chirp_streaming_bulk(self, benchmark, live):
        result = benchmark(live["chirp"].getfile, "/bulk.bin")
        assert len(result) == len(BULK)

    def test_bandwidth_gap_live(self, benchmark, live, figure):
        """Streaming vs 4 KB request-response on the same sockets."""
        import time

        live["nfs"].write_file("/bulk.bin", BULK)

        def chirp_read():
            start = time.perf_counter()
            got = live["chirp"].getfile("/bulk.bin")
            return time.perf_counter() - start, got

        chirp_s, got = benchmark.pedantic(chirp_read, rounds=1, iterations=1)
        assert len(got) == len(BULK)

        start = time.perf_counter()
        got = live["nfs"].read_file("/bulk.bin")
        nfs_s = time.perf_counter() - start
        assert len(got) == len(BULK)

        chirp_bw = len(BULK) / chirp_s / 1e6
        nfs_bw = len(BULK) / nfs_s / 1e6
        report = figure("Live bandwidth", "Loopback 4 MB read: streaming vs 4KB RPC")
        report.header("path                 MB/s")
        report.row(f"chirp getfile   {chirp_bw:9.1f}")
        report.row(f"nfs-like read   {nfs_bw:9.1f}")
        report.series("bw_mb_s", {"chirp": chirp_bw, "nfslike": nfs_bw})
        # the paper's factor was ~8x on hardware; insist on a clear win
        assert chirp_bw > 2 * nfs_bw


class TestLiveInterpositionOverhead:
    def test_interposed_stat_slowdown(self, benchmark, live, figure):
        """Figure 3's claim on our own trap: interposed calls cost much
        more than native ones (here the 'trap' is the Python patch layer
        plus namespace resolution plus the remote round trip)."""
        import time

        tmp = live["tmp"]
        local_file = tmp / "chirp" / "a" / "b" / "f.bin"
        adapter = Adapter(
            pool=None,
            credentials=ClientCredentials(methods=("unix",)),
        )
        host, port = live["chirp"].host, live["chirp"].port

        def measure(fn, n=300):
            start = time.perf_counter()
            for _ in range(n):
                fn()
            return (time.perf_counter() - start) / n

        native_t = benchmark.pedantic(
            lambda: measure(lambda: os.stat(str(local_file))),
            rounds=1, iterations=1,
        )
        with interposed(adapter):
            trapped_t = measure(lambda: os.stat(f"/cfs/{host}:{port}/a/b/f.bin"))
        adapter.close()
        report = figure("Live interposition", "Native vs interposed stat")
        report.header("path              latency")
        report.row(f"native os.stat {native_t*1e6:9.1f} us")
        report.row(f"interposed     {trapped_t*1e6:9.1f} us")
        report.series("stat_us", {"native": native_t * 1e6, "interposed": trapped_t * 1e6})
        assert trapped_t > 5 * native_t
