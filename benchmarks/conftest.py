"""Benchmark harness support.

Every benchmark regenerates one of the paper's tables or figures, prints
it in a paper-like layout, saves the raw series under
``benchmarks/results/``, and asserts the *shape* criteria from DESIGN.md
(who wins, by roughly what factor, where crossovers fall) -- never the
absolute numbers, which belonged to 2005 hardware.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class FigureReport:
    """Collects one figure's rows, prints them, and persists them."""

    def __init__(self, figure_id: str, title: str):
        self.figure_id = figure_id
        self.title = title
        self.lines: list[str] = []
        self.data: dict = {}

    def header(self, text: str) -> None:
        self.lines.append("")
        self.lines.append(text)
        self.lines.append("-" * len(text))

    def row(self, text: str) -> None:
        self.lines.append(text)

    def series(self, name: str, values) -> None:
        self.data[name] = values

    def emit(self) -> None:
        banner = f"=== {self.figure_id}: {self.title} ==="
        print()
        print(banner)
        for line in self.lines:
            print(line)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        base = os.path.join(RESULTS_DIR, self.figure_id.lower().replace(" ", "_"))
        with open(base + ".json", "w") as f:
            json.dump({"title": self.title, "data": self.data}, f, indent=2, default=str)
        with open(base + ".txt", "w") as f:
            f.write(banner + "\n" + "\n".join(self.lines) + "\n")


@pytest.fixture()
def figure():
    """Factory for FigureReports that auto-emit at teardown."""
    reports: list[FigureReport] = []

    def make(figure_id: str, title: str) -> FigureReport:
        report = FigureReport(figure_id, title)
        reports.append(report)
        return report

    yield make
    for report in reports:
        report.emit()


def us(seconds: float) -> str:
    return f"{seconds * 1e6:10.1f} us"
