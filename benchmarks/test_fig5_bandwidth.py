"""Figure 5: single-client bandwidth vs application block size.

Paper: copy 16 MB at each block size.  "The Unix case shows the upper
bound of 798 MB/s ... The same copy through Parrot peaks at 431 MB/s,
due to the extra data copy ... Parrot+CFS is able to use 80 MB/s [of the
1 Gb/s link].  Finally, Unix+NFS is only able to obtain 10 MB/s due to
the request-response nature of the protocol."
"""

from repro.sim.params import MB
from repro.sim.stacks import (
    CfsStack,
    NfsStack,
    ParrotLocalStack,
    UnixStack,
    bandwidth_curve,
)

BLOCKS = [2**i for i in range(0, 24)]  # 1 B .. 8 MiB


def compute_figure():
    stacks = {
        "unix": UnixStack(),
        "parrot": ParrotLocalStack(),
        "parrot+cfs": CfsStack(),
        "unix+nfs": NfsStack(),
    }
    return {
        name: bandwidth_curve(stack, BLOCKS, total_bytes=16 * MB)
        for name, stack in stacks.items()
    }


def test_fig5_bandwidth(benchmark, figure):
    curves = benchmark.pedantic(compute_figure, rounds=1, iterations=1)

    report = figure("Figure 5", "Single Client Bandwidth vs Block Size (MB/s)")
    shown = [2**i for i in range(0, 24, 3)]
    header = f"{'block':>9} " + " ".join(f"{n:>11}" for n in curves)
    report.header(header)
    for block in shown:
        cells = " ".join(f"{curves[n][block]:11.2f}" for n in curves)
        report.row(f"{block:>9} {cells}")
    for name, curve in curves.items():
        report.series(name, {str(k): v for k, v in curve.items()})

    peaks = {name: max(curve.values()) for name, curve in curves.items()}
    # ordering: local > trapped local > CFS over the wire > NFS
    assert peaks["unix"] > peaks["parrot"] > peaks["parrot+cfs"] > peaks["unix+nfs"]
    # rough anchor magnitudes from the paper (generous tolerance)
    assert 600 <= peaks["unix"] <= 1000
    assert 330 <= peaks["parrot"] <= 530
    assert 60 <= peaks["parrot+cfs"] <= 100
    assert 6 <= peaks["unix+nfs"] <= 14
    # every curve rises monotonically-ish to its plateau
    for name, curve in curves.items():
        values = [curve[b] for b in BLOCKS]
        assert values[0] < 0.1 * peaks[name]
        assert values[-1] > 0.85 * peaks[name]
    # NFS cannot exploit blocks beyond its RPC size
    assert curves["unix+nfs"][2**23] < 1.2 * curves["unix+nfs"][4096]
