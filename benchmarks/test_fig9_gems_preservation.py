"""Figure 9: data preservation in the GEMS distributed shared database.

Paper: "A modest data set of 14 GB is entered into GEMS for safekeeping.
The user specifies that up to 40 GB of space may be used ... the
replicator process then works to replicate the data until the storage
limit has been reached.  At three points during the life of this run,
three failures are induced by forcibly deleting data from one, five, and
ten disks.  As the auditor process discovers the losses, the replicator
brings the system back into a desired state."

The planning code in this run is the production
:class:`~repro.gems.policy.BudgetGreedyPolicy`; storage and time are
simulated (see DESIGN.md).  A real-socket, small-scale version of the
same story is asserted in ``tests/integration/test_dsdb_gems.py``.
"""

from repro.sim.gems_sim import GemsSimulation
from repro.sim.params import GB

DATASET_GB = 14.0
BUDGET_GB = 40.0
FAILURES = ((1800.0, 1), (2700.0, 5), (3600.0, 10))


def compute_figure():
    sim = GemsSimulation(
        n_files=140,
        file_bytes=100_000_000,  # 14 GB total
        budget_bytes=int(BUDGET_GB * GB),
        n_servers=30,
        failures=FAILURES,
        duration=5400.0,
    )
    sim.run()
    return sim


def test_fig9_gems_preservation(benchmark, figure):
    sim = benchmark.pedantic(compute_figure, rounds=1, iterations=1)

    report = figure("Figure 9", "Data Preservation in GEMS (GB stored vs time)")
    report.header(f"{'t (s)':>8} {'stored GB':>10} {'events'}")
    for pt in sim.timeline:
        if pt.events or pt.time % 300 == 0:
            interesting = [e for e in pt.events if not e.startswith("replicated")]
            if interesting or pt.time % 300 == 0:
                report.row(
                    f"{pt.time:8.0f} {pt.stored_bytes / GB:10.2f} "
                    f"{','.join(interesting)}"
                )
    report.series("stored_gb", sim.stored_series_gb())

    # the dataset arrives with one copy...
    assert sim.timeline[0].stored_bytes / GB == DATASET_GB
    # ...and replication fills the budget before the first failure
    pre_failure = sim.value_at(FAILURES[0][0] - sim.step)
    assert pre_failure >= 0.97 * BUDGET_GB
    # the budget is never exceeded
    assert max(p.stored_bytes for p in sim.timeline) <= BUDGET_GB * GB * 1.001

    # each induced failure dips the stored volume, deeper for more disks,
    # and the auditor+replicator restore it
    dips = []
    for t, ndisks in FAILURES:
        dip = sim.min_after(t, window=600.0)
        dips.append((ndisks, dip))
        assert dip < pre_failure  # visible dip
        recovered = sim.value_at(t + 1700.0) if t + 1700 <= 5400 else sim.timeline[-1].stored_bytes / GB
        assert recovered >= 0.95 * BUDGET_GB  # recovery
    # more disks lost => deeper dip
    assert dips[1][1] < dips[0][1]
    assert dips[2][1] < dips[1][1]

    # Survival: a single-disk failure can never destroy a file (replicas
    # sit on distinct servers), and overall survival stays near-total.
    # Full immunity to a *simultaneous ten-disk* failure would need >2
    # copies of everything, which a 40 GB budget for 14 GB cannot buy --
    # an honest property of the budget policy the figure's prose
    # does not dwell on.
    survivors = sum(1 for r in sim.records if r.actual)
    report.row(f"survivors: {survivors}/{len(sim.records)} files")
    assert survivors >= 0.95 * len(sim.records)
    # every surviving file is re-protected (>= 2 copies) by the end
    assert all(len(r.actual) >= 2 for r in sim.records if r.actual)
