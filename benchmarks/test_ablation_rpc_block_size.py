"""Ablation: how the NFS RPC block size limits bandwidth.

Figure 5 blames NFS's 10 MB/s on "4KB RPC packets".  This ablation
sweeps the model's RPC block size to show the ceiling is exactly the
block-per-round-trip structure: doubling the block doubles the ceiling,
and in the limit the request-response protocol approaches the streaming
one -- which is the design argument for Chirp's variable-sized messages.
"""

import dataclasses

from repro.sim.params import MB, PAPER_PARAMS
from repro.sim.stacks import CfsStack, NfsStack, bandwidth_curve

BLOCK_SWEEP = [1024, 4096, 16384, 65536, 262144]
APP_BLOCKS = [2**i for i in range(0, 24)]


def compute_sweep():
    out = {}
    for rpc_block in BLOCK_SWEEP:
        params = dataclasses.replace(PAPER_PARAMS, nfs_block=rpc_block)
        curve = bandwidth_curve(NfsStack(params), APP_BLOCKS, total_bytes=16 * MB)
        out[rpc_block] = max(curve.values())
    out["cfs-streaming"] = max(
        bandwidth_curve(CfsStack(), APP_BLOCKS, total_bytes=16 * MB).values()
    )
    return out


def test_ablation_rpc_block_size(benchmark, figure):
    peaks = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)

    report = figure(
        "Ablation RPC block size", "Peak bandwidth vs request-response block size"
    )
    report.header(f"{'rpc block':>14} {'peak MB/s':>10}")
    for key, value in peaks.items():
        report.row(f"{str(key):>14} {value:10.2f}")
    report.series("peak_mb_s", {str(k): v for k, v in peaks.items()})

    # bigger blocks amortize the round trip: strictly increasing ceiling
    values = [peaks[b] for b in BLOCK_SWEEP]
    assert values == sorted(values)
    # quadrupling the block should better than double the ceiling while
    # latency dominates
    assert peaks[16384] > 2 * peaks[4096]
    # the paper's configuration -- 4 KB blocks -- is what cripples NFS:
    # an order of magnitude below Chirp's streaming path
    assert peaks[4096] < peaks["cfs-streaming"] / 5
    # with big enough blocks request-response converges toward the wire
    # rate (it can even pass *user-level* streaming, which pays an extra
    # copy) but never exceeds the port itself
    assert peaks[262144] <= PAPER_PARAMS.port_bw / MB
