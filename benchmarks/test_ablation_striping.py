"""Ablation: striping a single file across servers (live, loopback).

"One may imagine filesystems that transparently stripe ... data" -- this
measures the realized extension: one logical file read through one
server (CFS) vs striped across four, on real sockets.  On loopback all
"servers" share one machine's CPU, so the paper-scale aggregate-bandwidth
win cannot show here; the bench reports the measured ratio and asserts
only correctness plus a sanity band (striping overhead must not be
catastrophic).  The aggregate-bandwidth *mechanism* (multiple NICs in
parallel) is asserted in the Figure 6 simulation instead.

The second ablation isolates the transport layer's contribution: the same
striped file read with stripe fetches forced serial (one connection per
endpoint, one fan-out worker) vs the default parallel fan-out.  Raw
loopback on one core is CPU-bound (every byte is a memcpy on the same
core), which hides the win, so the stripe traffic goes through loopback
proxies that add a small per-chunk link latency.  Sleeping releases the
GIL, so the parallel path genuinely overlaps the simulated turnarounds --
the same mechanism that pays off across real links.
"""

import getpass
import socket
import threading
import time

import pytest

from repro.auth.methods import AuthContext, ClientCredentials
from repro.chirp.server import FileServer, ServerConfig
from repro.core.cfs import CFS
from repro.core.metastore import ChirpMetadataStore
from repro.core.pool import ClientPool
from repro.core.retry import RetryPolicy
from repro.core.stripefs import StripedFS

FILE_BYTES = 8 * 1024 * 1024
STRIPE = 256 * 1024


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("striping")
    challenge = tmp / "challenge"
    challenge.mkdir()
    auth = AuthContext(enabled=("unix",), unix_challenge_dir=str(challenge))
    owner = f"unix:{getpass.getuser()}"
    servers = []
    for i in range(5):
        root = tmp / f"export{i}"
        root.mkdir()
        servers.append(
            FileServer(ServerConfig(root=str(root), owner=owner, auth=auth)).start()
        )
    pool = ClientPool(ClientCredentials(methods=("unix",)))
    policy = RetryPolicy(max_attempts=2, initial_delay=0.05)

    payload = bytes(i % 251 for i in range(FILE_BYTES))
    cfs = CFS(pool.get(*servers[0].address), policy=policy)
    cfs.write_file("/flat.bin", payload)

    dir_client = pool.get(*servers[0].address)
    dir_client.mkdir("/svol")
    for s in servers[1:]:
        c = pool.get(*s.address)
        c.mkdir("/tssdata")
        c.mkdir("/tssdata/svol")
    striped = StripedFS(
        ChirpMetadataStore(dir_client, "/svol", policy),
        pool,
        [s.address for s in servers[1:]],
        "/tssdata/svol",
        stripe_size=STRIPE,
        policy=policy,
    )
    striped.write_file("/striped.bin", payload)
    yield cfs, striped, payload, servers, policy
    pool.close()
    for s in servers:
        s.stop()


def _reader(dir_addr, data_addrs, policy, **kwargs):
    """A fresh StripedFS view of the already-written volume."""
    pool = ClientPool(
        ClientCredentials(methods=("unix",)),
        max_conns_per_endpoint=kwargs.pop("max_conns_per_endpoint", None) or 4,
    )
    fs = StripedFS(
        ChirpMetadataStore(pool.get(*dir_addr), "/svol", policy),
        pool,
        data_addrs,
        "/tssdata/svol",
        stripe_size=STRIPE,
        policy=policy,
        **kwargs,
    )
    return pool, fs


class _LatencyProxy:
    """Loopback TCP relay adding a fixed delay per forwarded chunk.

    Stands in for a real link's turnaround time: the sleep releases the
    GIL, so concurrent streams overlap their waits just as concurrent
    RPCs overlap wire latency.
    """

    def __init__(self, target: tuple, delay: float):
        self._target = target
        self._delay = delay
        self._srv = socket.socket()
        self._srv.bind(("127.0.0.1", 0))
        self._srv.listen(32)
        self.address = self._srv.getsockname()
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _ = self._srv.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self._target)
            except OSError:
                client.close()
                continue
            for src, dst in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump, args=(src, dst), daemon=True
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        while True:
            try:
                data = src.recv(65536)
            except OSError:
                data = b""
            if not data:
                for s in (src, dst):
                    try:
                        s.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                return
            time.sleep(self._delay)
            try:
                dst.sendall(data)
            except OSError:
                return

    def close(self) -> None:
        self._srv.close()


def test_ablation_striping(benchmark, setup, figure):
    cfs, striped, payload, _servers, _policy = setup

    def read_flat():
        return cfs.read_file("/flat.bin")

    def read_striped():
        return striped.read_file("/striped.bin")

    # correctness first: both paths return identical bytes
    assert read_flat() == payload
    assert read_striped() == payload

    flat_s = benchmark.pedantic(
        lambda: min(_timed(read_flat) for _ in range(3)), rounds=1, iterations=1
    )
    striped_s = min(_timed(read_striped) for _ in range(3))

    flat_bw = FILE_BYTES / flat_s / 1e6
    striped_bw = FILE_BYTES / striped_s / 1e6
    report = figure(
        "Ablation striping", "8 MB read: one server vs 4-way striping (loopback)"
    )
    report.header("path                    MB/s")
    report.row(f"CFS (one server)   {flat_bw:9.1f}")
    report.row(f"StripedFS (4-way)  {striped_bw:9.1f}")
    report.row(f"ratio              {striped_bw/flat_bw:8.2f}x")
    report.series("bw_mb_s", {"cfs": flat_bw, "striped": striped_bw})

    # loopback shares one CPU among all servers, so no aggregate win is
    # promised here -- only that striping is not pathologically slower
    assert striped_bw > 0.3 * flat_bw


def test_ablation_serial_vs_parallel_stripe_fetch(setup, figure):
    """Same 4-way striped file; only the fan-out discipline changes."""
    _cfs, _striped, payload, servers, policy = setup

    # 1 ms per forwarded chunk stands in for link turnaround; both
    # disciplines pay it, only one can overlap it.  Stripe locations are
    # recorded in the stub at write time, so the file is written through
    # the proxies to put them on the read path too.
    proxies = [_LatencyProxy(s.address, delay=0.001) for s in servers[1:]]
    data_addrs = [p.address for p in proxies]
    writer_pool, writer_fs = _reader(servers[0].address, data_addrs, policy)
    serial_pool, serial_fs = _reader(
        servers[0].address,
        data_addrs,
        policy,
        max_conns_per_endpoint=1,
        fanout_workers=1,
    )
    parallel_pool, parallel_fs = _reader(servers[0].address, data_addrs, policy)
    try:
        writer_fs.write_file("/striped-lat.bin", payload)
        assert serial_fs.read_file("/striped-lat.bin") == payload
        assert parallel_fs.read_file("/striped-lat.bin") == payload

        serial_s = min(
            _timed(lambda: serial_fs.read_file("/striped-lat.bin")) for _ in range(3)
        )
        parallel_s = min(
            _timed(lambda: parallel_fs.read_file("/striped-lat.bin")) for _ in range(3)
        )
    finally:
        writer_pool.close()
        serial_pool.close()
        parallel_pool.close()
        for proxy in proxies:
            proxy.close()

    serial_bw = FILE_BYTES / serial_s / 1e6
    parallel_bw = FILE_BYTES / parallel_s / 1e6
    report = figure(
        "Ablation stripe fanout",
        "8 MB striped read, 4 servers behind 1 ms links: serial vs parallel",
    )
    report.header("fetch discipline          MB/s")
    report.row(f"serial (1 worker)    {serial_bw:9.1f}")
    report.row(f"parallel (default)   {parallel_bw:9.1f}")
    report.row(f"speedup              {parallel_bw/serial_bw:8.2f}x")
    report.series("bw_mb_s", {"serial": serial_bw, "parallel": parallel_bw})

    # Four independent streams must overlap their turnarounds; anything
    # under a 1.5x win means the fan-out serialized somewhere.
    assert parallel_s < serial_s / 1.5


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
