"""Ablation: striping a single file across servers (live, loopback).

"One may imagine filesystems that transparently stripe ... data" -- this
measures the realized extension: one logical file read through one
server (CFS) vs striped across three, on real sockets.  On loopback all
"servers" share one machine's CPU, so the paper-scale aggregate-bandwidth
win cannot show here; the bench reports the measured ratio and asserts
only correctness plus a sanity band (striping overhead must not be
catastrophic).  The aggregate-bandwidth *mechanism* (multiple NICs in
parallel) is asserted in the Figure 6 simulation instead.
"""

import getpass
import time

import pytest

from repro.auth.methods import AuthContext, ClientCredentials
from repro.chirp.server import FileServer, ServerConfig
from repro.core.cfs import CFS
from repro.core.metastore import ChirpMetadataStore
from repro.core.pool import ClientPool
from repro.core.retry import RetryPolicy
from repro.core.stripefs import StripedFS

FILE_BYTES = 8 * 1024 * 1024
STRIPE = 256 * 1024


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("striping")
    challenge = tmp / "challenge"
    challenge.mkdir()
    auth = AuthContext(enabled=("unix",), unix_challenge_dir=str(challenge))
    owner = f"unix:{getpass.getuser()}"
    servers = []
    for i in range(4):
        root = tmp / f"export{i}"
        root.mkdir()
        servers.append(
            FileServer(ServerConfig(root=str(root), owner=owner, auth=auth)).start()
        )
    pool = ClientPool(ClientCredentials(methods=("unix",)))
    policy = RetryPolicy(max_attempts=2, initial_delay=0.05)

    payload = bytes(i % 251 for i in range(FILE_BYTES))
    cfs = CFS(pool.get(*servers[0].address), policy=policy)
    cfs.write_file("/flat.bin", payload)

    dir_client = pool.get(*servers[0].address)
    dir_client.mkdir("/svol")
    for s in servers[1:]:
        c = pool.get(*s.address)
        c.mkdir("/tssdata")
        c.mkdir("/tssdata/svol")
    striped = StripedFS(
        ChirpMetadataStore(dir_client, "/svol", policy),
        pool,
        [s.address for s in servers[1:]],
        "/tssdata/svol",
        stripe_size=STRIPE,
        policy=policy,
    )
    striped.write_file("/striped.bin", payload)
    yield cfs, striped, payload
    pool.close()
    for s in servers:
        s.stop()


def test_ablation_striping(benchmark, setup, figure):
    cfs, striped, payload = setup

    def read_flat():
        return cfs.read_file("/flat.bin")

    def read_striped():
        return striped.read_file("/striped.bin")

    # correctness first: both paths return identical bytes
    assert read_flat() == payload
    assert read_striped() == payload

    flat_s = benchmark.pedantic(
        lambda: min(_timed(read_flat) for _ in range(3)), rounds=1, iterations=1
    )
    striped_s = min(_timed(read_striped) for _ in range(3))

    flat_bw = FILE_BYTES / flat_s / 1e6
    striped_bw = FILE_BYTES / striped_s / 1e6
    report = figure(
        "Ablation striping", "8 MB read: one server vs 3-way striping (loopback)"
    )
    report.header("path                    MB/s")
    report.row(f"CFS (one server)   {flat_bw:9.1f}")
    report.row(f"StripedFS (3-way)  {striped_bw:9.1f}")
    report.row(f"ratio              {striped_bw/flat_bw:8.2f}x")
    report.series("bw_mb_s", {"cfs": flat_bw, "striped": striped_bw})

    # loopback shares one CPU among all servers, so no aggregate win is
    # promised here -- only that striping is not pathologically slower
    assert striped_bw > 0.3 * flat_bw


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
