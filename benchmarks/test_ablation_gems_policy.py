"""Ablation: GEMS budget-greedy replication vs a fixed copy count.

DESIGN.md calls out the replication policy as a design choice worth
ablating.  The budget policy buys the *most* copies the space allows and
degrades gracefully; a fixed-count policy either under-uses the space
(count too low) or would overrun it (count too high).  Both run through
the same Figure 9 scenario.
"""

from repro.gems.policy import BudgetGreedyPolicy, FixedCountPolicy
from repro.sim.gems_sim import GemsSimulation
from repro.sim.params import GB

BUDGET = int(40 * GB)
SCENARIO = dict(
    n_files=140,
    file_bytes=100_000_000,
    budget_bytes=BUDGET,
    n_servers=30,
    failures=((1800.0, 5),),
    duration=3600.0,
)


def run_policy(policy):
    sim = GemsSimulation(policy=policy, **SCENARIO)
    sim.run()
    return sim


def compute_ablation():
    return {
        "budget-greedy(40GB)": run_policy(BudgetGreedyPolicy(BUDGET)),
        "fixed-count(2)": run_policy(FixedCountPolicy(2)),
        "fixed-count(3)": run_policy(FixedCountPolicy(3)),
    }


def test_ablation_gems_policy(benchmark, figure):
    sims = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)

    report = figure(
        "Ablation GEMS policy", "Replication policies through a 5-disk failure"
    )
    report.header(f"{'policy':<22} {'peak GB':>8} {'dip GB':>8} {'final GB':>9} {'survivors':>10}")
    stats = {}
    for name, sim in sims.items():
        peak = max(p.stored_bytes for p in sim.timeline) / GB
        dip = sim.min_after(1800.0, window=600.0)
        final = sim.timeline[-1].stored_bytes / GB
        survivors = sum(1 for r in sim.records if r.actual)
        stats[name] = (peak, dip, final, survivors)
        report.row(
            f"{name:<22} {peak:8.1f} {dip:8.1f} {final:9.1f} {survivors:>7}/140"
        )
        report.series(name, {"peak_gb": peak, "dip_gb": dip, "final_gb": final})

    budget_peak = stats["budget-greedy(40GB)"][0]
    fixed2_peak = stats["fixed-count(2)"][0]
    fixed3_peak = stats["fixed-count(3)"][0]
    # budget-greedy uses the headroom fixed-count(2) leaves on the table
    assert budget_peak > fixed2_peak
    # fixed-count(2) respects 28 GB; fixed-count(3) wants 42 GB > budget:
    # the policy simply has no notion of the user's space limit
    assert fixed2_peak <= 28.01
    assert fixed3_peak > 40.0
    # all policies keep at least two copies' worth after recovery
    for name, (_, _, final, survivors) in stats.items():
        assert final >= 27.0
        assert survivors >= 0.95 * 140
