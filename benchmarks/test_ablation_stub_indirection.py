"""Ablation: the cost of stub indirection, model and live.

Figure 4 shows DSFS paying ~2x on metadata for its stub lookups.  This
ablation (a) sweeps the number of extra stub round trips in the model --
deeper indirection chains (e.g. stubs pointing at stubs for future
striping/replication layers) scale latency linearly -- and (b) measures
the real CFS-vs-DSFS stat gap over loopback.
"""

import dataclasses

import getpass

import pytest

from repro.core.dsfs import DSFS
from repro.core.pool import ClientPool
from repro.core.retry import RetryPolicy
from repro.auth.methods import AuthContext, ClientCredentials
from repro.chirp.client import ChirpClient
from repro.chirp.server import FileServer, ServerConfig
from repro.core.cfs import CFS
from repro.sim.params import PAPER_PARAMS
from repro.sim.stacks import CfsStack, DsfsStack

DEPTHS = [0, 1, 2, 4]


@pytest.fixture(scope="module")
def live_fs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("stub")
    challenge = tmp / "challenge"
    challenge.mkdir()
    auth = AuthContext(enabled=("unix",), unix_challenge_dir=str(challenge))
    servers = []
    for i in range(3):
        root = tmp / f"export{i}"
        root.mkdir()
        servers.append(
            FileServer(
                ServerConfig(root=str(root), owner=f"unix:{getpass.getuser()}", auth=auth)
            ).start()
        )
    pool = ClientPool(ClientCredentials(methods=("unix",)))
    policy = RetryPolicy(max_attempts=2, initial_delay=0.05)
    cfs = CFS(pool.get(*servers[0].address), policy=policy)
    cfs.write_file("/f.bin", b"x" * 1000)
    dsfs = DSFS.create(
        pool, *servers[0].address, "/vol",
        [s.address for s in servers[1:]], name="vol", policy=policy,
    )
    dsfs.write_file("/f.bin", b"x" * 1000)
    yield cfs, dsfs
    pool.close()
    for s in servers:
        s.stop()


def model_sweep():
    cfs_stat = CfsStack().op("stat")
    rows = {}
    for depth in DEPTHS:
        params = dataclasses.replace(PAPER_PARAMS, dsfs_stub_rpcs=depth)
        rows[depth] = DsfsStack(params).op("stat")
    return cfs_stat, rows


def test_ablation_stub_indirection(benchmark, live_fs, figure):
    cfs_stat, rows = benchmark.pedantic(model_sweep, rounds=1, iterations=1)

    report = figure(
        "Ablation stub indirection", "stat latency vs stub chain depth"
    )
    report.header(f"{'extra stub RPCs':>16} {'model stat (us)':>16}")
    report.row(f"{'(CFS: 0)':>16} {cfs_stat*1e6:16.1f}")
    for depth, latency in rows.items():
        report.row(f"{depth:>16} {latency*1e6:16.1f}")
    report.series("model_stat_us", {d: t * 1e6 for d, t in rows.items()})

    # linear growth in indirection depth
    rtt = PAPER_PARAMS.lan_rtt + PAPER_PARAMS.server_op_overhead
    for depth in DEPTHS:
        assert rows[depth] == pytest.approx(rows[0] + depth * rtt, rel=1e-9)

    # and the live system shows the same ordering: DSFS stat > CFS stat
    import time

    cfs, dsfs = live_fs

    def measure(fn, n=200):
        start = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - start) / n

    cfs_live = measure(lambda: cfs.stat("/f.bin"))
    dsfs_live = measure(lambda: dsfs.stat("/f.bin"))
    report.row(f"live: cfs stat {cfs_live*1e6:9.1f} us, dsfs stat {dsfs_live*1e6:9.1f} us")
    report.series("live_stat_us", {"cfs": cfs_live * 1e6, "dsfs": dsfs_live * 1e6})
    assert dsfs_live > 1.3 * cfs_live
