"""Figure 7: DSFS scalability, mixed-bound regime.

Paper: "1280 files of 1 MB are stored in a DSFS with 1 to 8 servers.
With one or two servers, not all data fits in the server buffer caches,
and the system runs at disk speeds.  With three or more, the system is
constrained only by the switch backplane."
"""

from repro.sim.dsfs_sim import run_scalability_sweep
from repro.sim.params import MB, PAPER_PARAMS

SERVERS = range(1, 9)


def compute_figure():
    return run_scalability_sweep(
        n_files=1280,
        file_bytes=1 * MB,
        server_counts=SERVERS,
        duration=30.0,
        warmup=60.0,  # long enough for the >=3-server caches to warm up
    )


def test_fig7_dsfs_mixed_bound(benchmark, figure):
    results = benchmark.pedantic(compute_figure, rounds=1, iterations=1)

    report = figure("Figure 7", "DSFS Scalability: Mixed-Bound (1280 MB dataset)")
    report.header(f"{'servers':>8} {'MB/s':>9} {'cache hit':>10} {'regime':>12}")
    backplane = PAPER_PARAMS.backplane_bw / MB
    for r in results:
        regime = "disk-bound" if r.throughput_mb_s < 0.5 * backplane else "switch-bound"
        report.row(
            f"{r.n_servers:>8} {r.throughput_mb_s:9.1f} "
            f"{r.cache_hit_rate:10.2f} {regime:>12}"
        )
    report.series(
        "throughput_mb_s", {r.n_servers: r.throughput_mb_s for r in results}
    )

    by_n = {r.n_servers: r for r in results}
    # 1-2 servers: data exceeds cache, so throughput is far below the
    # network's ability -- the disk-bound regime
    assert by_n[1].cache_hit_rate < 0.7
    assert by_n[2].cache_hit_rate < 0.8
    assert by_n[1].throughput_mb_s < 0.3 * backplane
    assert by_n[2].throughput_mb_s < 0.5 * backplane
    # the crossover: at 3 servers the dataset fits in aggregate cache and
    # the system jumps to the switch ceiling
    assert by_n[3].cache_hit_rate > 0.85
    assert by_n[3].throughput_mb_s >= 0.8 * backplane
    for n in range(3, 9):
        assert by_n[n].throughput_mb_s <= 1.05 * backplane
    # the jump from 2 to 3 servers is the figure's signature
    assert by_n[3].throughput_mb_s >= 2.5 * by_n[2].throughput_mb_s
