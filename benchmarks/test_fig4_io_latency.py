"""Figure 4: I/O call latency over 1 Gb/s Ethernet.

Paper: Parrot+CFS vs kernel NFS (caching off) vs Parrot+DSFS.  "Note
that Parrot-based CFS generally has lower latency than kernel-based NFS.
DSFS has slower stat and open calls because stub file lookups require
multiple round trips."
"""

from repro.sim.stacks import CfsStack, DsfsStack, NfsStack, ParrotLocalStack, UnixStack

from conftest import us

CALLS = ("stat", "open_close", "read_8k", "write_8k")


def compute_figure():
    cfs, nfs, dsfs = CfsStack(), NfsStack(), DsfsStack()
    return {name: (cfs.op(name), nfs.op(name), dsfs.op(name)) for name in CALLS}


def test_fig4_io_latency(benchmark, figure):
    rows = benchmark.pedantic(compute_figure, rounds=1, iterations=1)

    report = figure("Figure 4", "I/O Call Latency over 1 GbE")
    report.header(f"{'call':<12} {'parrot+cfs':>13} {'unix+nfs':>13} {'parrot+dsfs':>13}")
    for name, (cfs_t, nfs_t, dsfs_t) in rows.items():
        report.row(f"{name:<12} {us(cfs_t)} {us(nfs_t)} {us(dsfs_t)}")
        report.series(name, {"cfs_s": cfs_t, "nfs_s": nfs_t, "dsfs_s": dsfs_t})

    unix, parrot = UnixStack(), ParrotLocalStack()
    for name in CALLS:
        cfs_t, nfs_t, dsfs_t = rows[name]
        # network latency outweighs the trap by another order of magnitude
        trap = parrot.op(name) - unix.op(name)
        assert cfs_t >= 5 * trap
        # DSFS matches CFS on the data path exactly
        if name in ("read_8k", "write_8k"):
            assert dsfs_t == cfs_t

    # CFS beats NFS on metadata (no per-component lookups) and 8 KB write
    assert rows["stat"][0] < rows["stat"][1]
    assert rows["open_close"][0] < rows["open_close"][1]
    assert rows["write_8k"][0] < rows["write_8k"][1]
    # DSFS metadata costs about twice CFS
    assert 1.3 <= rows["stat"][2] / rows["stat"][0] <= 3.0
    assert 1.3 <= rows["open_close"][2] / rows["open_close"][0] <= 3.0
