"""Figure 6: DSFS scalability, net-bound regime.

Paper: "128 files of 1 MB are stored in a DSFS with 1 to 8 servers.  In
all configurations, all data fits in the server buffer caches.  One
server can transmit at 100 MB/s, near the practical limit of TCP on a
1 Gb port.  Multiple servers increase the total bandwidth, but are soon
limited by the backplane of the inexpensive commodity switch [300 MB/s]."
"""

import pytest

from repro.sim.dsfs_sim import run_scalability_sweep
from repro.sim.params import MB, PAPER_PARAMS

SERVERS = range(1, 9)


def compute_figure():
    return run_scalability_sweep(
        n_files=128,
        file_bytes=1 * MB,
        server_counts=SERVERS,
        duration=20.0,
        warmup=10.0,
    )


def test_fig6_dsfs_net_bound(benchmark, figure):
    results = benchmark.pedantic(compute_figure, rounds=1, iterations=1)

    report = figure("Figure 6", "DSFS Scalability: Net-Bound (128 MB dataset)")
    report.header(f"{'servers':>8} {'MB/s':>9} {'cache hit':>10}")
    for r in results:
        report.row(f"{r.n_servers:>8} {r.throughput_mb_s:9.1f} {r.cache_hit_rate:10.2f}")
    report.series(
        "throughput_mb_s", {r.n_servers: r.throughput_mb_s for r in results}
    )

    by_n = {r.n_servers: r.throughput_mb_s for r in results}
    port = PAPER_PARAMS.port_bw / MB
    backplane = PAPER_PARAMS.backplane_bw / MB
    # one server saturates one port
    assert by_n[1] == pytest.approx(port, rel=0.15)
    # two servers roughly double
    assert by_n[2] == pytest.approx(2 * port, rel=0.15)
    # by three servers the backplane is the binding constraint...
    assert by_n[3] >= 0.8 * backplane
    # ...and adding more servers cannot exceed it
    for n in range(3, 9):
        assert by_n[n] <= 1.05 * backplane
    # everything stayed cache-resident (the regime's defining property)
    assert all(r.cache_hit_rate > 0.9 for r in results)
