#!/usr/bin/env python3
"""Quickstart: deploy tactical storage and use it in five minutes.

This walks the paper's core loop end to end, on your machine, with no
privileges:

1. deploy two personal file servers (one command each -- here, one call),
2. register them with a catalog and discover them back,
3. talk to one directly through the adapter namespace,
4. set an ACL so a second identity can share a reserved directory.

Run::

    python examples/quickstart.py
"""

import getpass
import tempfile
import time

from repro import (
    Adapter,
    AuthContext,
    CatalogClient,
    CatalogServer,
    ClientCredentials,
    FileServer,
    ServerConfig,
)


def main() -> None:
    user = getpass.getuser()
    workspace = tempfile.mkdtemp(prefix="tss-quickstart-")
    print(f"workspace: {workspace}")

    # -- 1. a catalog and two rapidly-deployed file servers ----------------
    catalog = CatalogServer().start()
    auth = AuthContext(enabled=("unix", "hostname"))
    servers = []
    for i in range(2):
        root = f"{workspace}/export{i}"
        import os

        os.makedirs(root)
        config = ServerConfig(
            root=root,
            owner=f"unix:{user}",
            name=f"scratch{i}",
            auth=auth,
            catalog_addrs=(catalog.address,),
            report_interval=0.5,
        )
        server = FileServer(config).start()
        servers.append(server)
        print(f"deployed {config.name} on {server.address[0]}:{server.address[1]}")

    # -- 2. discovery ------------------------------------------------------
    for server in servers:
        server.report_now()
    time.sleep(0.3)
    found = CatalogClient([catalog.address]).discover()
    print("\ncatalog sees:")
    for report in found:
        print(
            f"  {report.name:<10} {report.host}:{report.port}"
            f"  free={report.free_bytes // 10**6} MB  owner={report.owner}"
        )

    # -- 3. direct access through the adapter ------------------------------
    adapter = Adapter(credentials=ClientCredentials(methods=("unix",)))
    host, port = servers[0].address
    url = f"/cfs/{host}:{port}"
    with adapter.open(f"{url}/hello.txt", "w") as f:
        f.write("tactical storage says hello\n")
    with adapter.open(f"{url}/hello.txt") as f:
        print(f"\nread back: {f.read()!r}")
    print(f"listing:   {adapter.listdir(url + '/')}")
    print(f"stat size: {adapter.stat(url + '/hello.txt').st_size} bytes")

    # -- 4. sharing via ACLs and the reserve right --------------------------
    chirp = adapter.pool.get(host, port)
    chirp.setacl("/", "hostname:localhost", "v(rwl)")
    print(f"\nroot ACL now:\n{chirp.getacl('/').to_text()}", end="")

    visitor = Adapter(credentials=ClientCredentials(methods=("hostname",)))
    visitor.mkdir(f"{url}/visitor-space")  # reserve right kicks in
    visitor.write_bytes(f"{url}/visitor-space/note.txt", b"my private corner")
    v_client = visitor.pool.get(host, port)
    print(f"visitor ({v_client.whoami()}) reserved /visitor-space:")
    print(f"  {v_client.getacl('/visitor-space').to_text().strip()}")
    # the owner still sees everything on their own disk
    print(f"owner reads it anyway: {adapter.read_bytes(f'{url}/visitor-space/note.txt')!r}")

    # -- teardown -----------------------------------------------------------
    visitor.close()
    adapter.close()
    for server in servers:
        server.stop()
    catalog.stop()
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
