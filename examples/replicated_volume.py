#!/usr/bin/env python3
"""Future work, realized: a transparently replicating filesystem.

The paper's conclusion: "One may imagine filesystems that transparently
stripe, replicate, and version data."  Because abstractions are just
user-level code over the same Unix interface, adding one needs no new
servers and no administrator: this script builds a 2-replica filesystem
over four donated disks, survives a server loss *with an open file*,
detects silent corruption, and heals itself.

Run::

    python examples/replicated_volume.py
"""

import getpass
import os
import tempfile

from repro import (
    AuthContext,
    ClientCredentials,
    ClientPool,
    FileServer,
    OpenFlags,
    ServerConfig,
)
from repro.core.metastore import ChirpMetadataStore
from repro.core.replfs import ReplicatedFS
from repro.core.retry import RetryPolicy


def main() -> None:
    workspace = tempfile.mkdtemp(prefix="tss-repl-")
    user = getpass.getuser()
    auth = AuthContext(enabled=("unix",))

    servers = []
    for i in range(5):
        root = os.path.join(workspace, f"disk{i}")
        os.makedirs(root)
        servers.append(
            FileServer(
                ServerConfig(root=root, owner=f"unix:{user}", name=f"disk{i}", auth=auth)
            ).start()
        )
    pool = ClientPool(ClientCredentials(methods=("unix",)))
    policy = RetryPolicy(max_attempts=3, initial_delay=0.05)

    # directory tree on disk0; data replicated 2x across disks 1-4
    dir_client = pool.get(*servers[0].address)
    dir_client.mkdir("/rvol")
    for s in servers[1:]:
        c = pool.get(*s.address)
        c.mkdir("/tssdata")
        c.mkdir("/tssdata/rvol")
    fs = ReplicatedFS(
        ChirpMetadataStore(dir_client, "/rvol", policy),
        pool,
        [s.address for s in servers[1:]],
        "/tssdata/rvol",
        copies=2,
        policy=policy,
    )
    print("replicated filesystem up: 1 directory server + 4 data servers, 2 copies")

    # -- normal use ---------------------------------------------------------
    fs.mkdir("/archive")
    fs.write_file("/archive/thesis.tex", b"\\documentclass{article}..." * 100)
    stub = fs._read_stub("/archive/thesis.tex")
    ports = [p for _, p, _ in stub.locations]
    print(f"thesis.tex written to 2 servers (ports {ports})")

    # -- survive a server loss with the file open ----------------------------
    handle = fs.open("/archive/thesis.tex", OpenFlags(read=True))
    victim_endpoint = stub.locations[0][:2]
    victim = next(s for s in servers if s.address == victim_endpoint)
    print(f"\nkilling {victim.config.name} while the file is open...")
    victim.stop()
    pool.invalidate(*victim_endpoint)
    data = handle.pread(30, 0)
    print(f"read still works: {data[:27]!r}...  (handle degraded: {handle.degraded})")
    handle.close()

    # -- heal back to full replication ---------------------------------------
    print(f"health before heal: {sorted(fs.verify('/archive/thesis.tex').values())}")
    added = fs.heal("/archive/thesis.tex")
    print(f"heal added {added} cop{'ies' if added != 1 else 'y'}")
    print(f"health after heal:  {sorted(fs.verify('/archive/thesis.tex').values())}")

    # -- detect silent corruption --------------------------------------------
    # (corrupting the *second* replica: with copies=2 a divergence is a
    # tie, resolved toward the first-listed replica -- use copies>=3 for
    # true majority arbitration; see ReplicatedFS.verify)
    fs.write_file("/archive/data.bin", b"important bytes " * 64)
    loc = fs._read_stub("/archive/data.bin").locations[1]
    pool.get(loc[0], loc[1]).putfile(loc[2], b"bitrot bitrot bi" * 64)
    health = fs.verify("/archive/data.bin")
    print(f"\nafter corrupting one replica: {sorted(health.values())}")
    fs.heal("/archive/data.bin")
    print(f"after heal: {sorted(fs.verify('/archive/data.bin').values())}")
    print(f"content intact: {fs.read_file('/archive/data.bin')[:16]!r}")

    pool.close()
    for s in servers:
        if s is not victim:
            s.stop()
    print("\nreplicated volume example complete.")


if __name__ == "__main__":
    main()
