#!/usr/bin/env python3
"""Build a shared scratch filesystem out of discovered idle disks.

The question from the paper's introduction: "Why can't a user use a
local idle disk as a personal shared file system?"  Answer, in one
script: discover idle storage at a catalog, compose it into a DSFS
(directory tree on one server, data spread over the rest), and let two
users share it -- then lose a disk and watch the filesystem degrade
instead of dying.

Run::

    python examples/shared_scratch_dsfs.py
"""

import getpass
import os
import tempfile
import time

from repro import (
    AuthContext,
    CatalogClient,
    CatalogServer,
    ClientCredentials,
    ClientPool,
    DSFS,
    FileServer,
    ServerConfig,
)
from repro.util.errors import ChirpError


def main() -> None:
    workspace = tempfile.mkdtemp(prefix="tss-dsfs-")
    user = getpass.getuser()
    auth = AuthContext(enabled=("unix",))
    catalog = CatalogServer().start()

    # -- four workstations export their idle space --------------------------
    servers = []
    for i in range(4):
        root = os.path.join(workspace, f"ws{i}")
        os.makedirs(root)
        servers.append(
            FileServer(
                ServerConfig(
                    root=root,
                    owner=f"unix:{user}",
                    name=f"workstation{i}",
                    auth=auth,
                    catalog_addrs=(catalog.address,),
                )
            ).start()
        )
        servers[-1].report_now()
    time.sleep(0.3)

    # -- discover, then compose ----------------------------------------------
    reports = CatalogClient([catalog.address]).find_space(min_free_bytes=1)
    print("discovered idle storage:")
    for r in reports:
        print(f"  {r.name:<14} {r.host}:{r.port}")
    dir_server = reports[0]
    data_servers = [(r.host, r.port) for r in reports[1:]]

    pool = ClientPool(ClientCredentials(methods=("unix",)))
    scratch = DSFS.create(
        pool,
        dir_server.host,
        dir_server.port,
        "/scratch",
        data_servers,
        name="scratch",
    )
    print(
        f"\ncreated DSFS: directory on {dir_server.name}, data across "
        f"{len(data_servers)} servers"
    )

    # -- two users share one namespace ---------------------------------------
    alice_pool = ClientPool(ClientCredentials(methods=("unix",)))
    alice_view = DSFS.open_volume(
        alice_pool, dir_server.host, dir_server.port, "/scratch"
    )
    scratch.mkdir("/results")
    scratch.write_file("/results/run1.dat", b"R" * 50_000)
    alice_view.write_file("/results/run2.dat", b"A" * 50_000)
    print(f"shared namespace: /results -> {alice_view.listdir('/results')}")
    for path in ("/results/run1.dat", "/results/run2.dat"):
        stub = scratch.stub_for(path)
        print(f"  {path} lives on port {stub.port} as {stub.path.split('/')[-1][:24]}…")

    # -- failure coherence ---------------------------------------------------
    victim_endpoint = scratch.stub_for("/results/run1.dat").endpoint
    victim = next(s for s in servers if s.address == victim_endpoint)
    print(f"\nkilling the server holding run1.dat ({victim.config.name})...")
    victim.stop()
    pool.invalidate(*victim_endpoint)

    print(f"directory still navigable: {scratch.listdir('/results')}")
    other = "/results/run2.dat" if victim_endpoint != scratch.stub_for("/results/run2.dat").endpoint else None
    if other:
        print(f"{other} still reads: {len(scratch.read_file(other))} bytes")
    try:
        scratch.read_file("/results/run1.dat")
    except ChirpError as exc:
        print(f"run1.dat correctly unavailable: {type(exc).__name__}")
    # new files automatically avoid the dead server
    scratch.write_file("/results/run3.dat", b"N" * 10_000)
    print(
        f"new file placed on port {scratch.stub_for('/results/run3.dat').port} "
        "(not the dead one)"
    )

    alice_pool.close()
    pool.close()
    for server in servers:
        if server is not victim:
            server.stop()
    catalog.stop()
    print("\nshared scratch example complete.")


if __name__ == "__main__":
    main()
