#!/usr/bin/env python3
"""The section 8 story: deploying SP5 onto a grid without changing it.

The real SP5 (BaBar detector simulation) could not be modified, could
not have filesystem clients installed for it, and its data had to stay
on home storage protected by grid credentials.  The TSS answer:

1. the collaboration's *home storage* is a Chirp server whose ACL admits
   only Globus-credentialed members of the virtual organization,
2. the (synthetic) SP5 application is installed there once,
3. a "grid worker node" runs the unmodified application under the
   adapter's interposition, loading libraries and writing outputs over
   the wire with the user's GSI proxy.

Run::

    python examples/grid_physics_sp5.py
"""

import getpass
import os
import tempfile
import time

from repro import (
    Adapter,
    AuthContext,
    ClientCredentials,
    FileServer,
    ServerConfig,
    SimulatedCA,
    interposed,
)
from repro.apps.sp5 import SyntheticSP5


def main() -> None:
    workspace = tempfile.mkdtemp(prefix="tss-sp5-")
    ca = SimulatedCA("BaBarGridCA")  # the VO's certificate authority

    # -- the collaboration's home storage server ---------------------------
    home_root = os.path.join(workspace, "home-storage")
    os.makedirs(home_root)
    server = FileServer(
        ServerConfig(
            root=home_root,
            owner=f"unix:{getpass.getuser()}",
            name="babar-home",
            auth=AuthContext(
                enabled=("globus", "unix"),
                trusted_cas={ca.name: ca.secret},
            ),
        )
    ).start()
    host, port = server.address
    print(f"home storage: {host}:{port} (globus auth, CA={ca.name})")

    # the admin opens the export to the virtual organization only
    admin = Adapter(credentials=ClientCredentials(methods=("unix",)))
    chirp = admin.pool.get(host, port)
    chirp.setacl("/", "globus:/O=BaBar/*", "rwl")
    print("ACL:", chirp.getacl("/").to_text().strip().replace("\n", " | "))

    # -- install the application once, from the admin side ------------------
    app_url = f"/cfs/{host}:{port}/sp5"
    installer = SyntheticSP5(app_url, scale=0.3)
    with interposed(admin):
        installer.install()
    print(
        f"installed SP5: {installer.stats.files_installed} files, "
        f"{installer.stats.bytes_installed // 1000} kB"
    )

    # -- a grid job runs it, unmodified, with a GSI proxy --------------------
    alice_cred = ca.issue("/O=BaBar/OU=nikhef.nl/CN=Sander Klous")
    grid_job = Adapter(
        credentials=ClientCredentials(methods=("globus",), globus=alice_cred)
    )
    print(f"\ngrid job authenticates as: {grid_job.pool.get(host, port).whoami()}")

    app = SyntheticSP5(app_url, scale=0.3)
    with interposed(grid_job):
        t0 = time.monotonic()
        app.initialize()
        init_s = time.monotonic() - t0
        t0 = time.monotonic()
        app.process_events(10)
        events_s = time.monotonic() - t0
        verified = app.verify_outputs()
    print(
        f"init: {app.stats.files_read} files / {app.stats.bytes_read // 1000} kB "
        f"in {init_s:.2f}s over the wire"
    )
    print(f"events: 10 processed in {events_s:.2f}s, {verified} outputs verified")

    # an outsider with a certificate from the wrong CA gets nowhere
    rogue_ca = SimulatedCA("SomeOtherCA")
    rogue_cred = rogue_ca.issue("/O=BaBar/CN=Mallory")  # right DN, wrong CA
    try:
        Adapter(
            credentials=ClientCredentials(methods=("globus",), globus=rogue_cred)
        ).listdir(app_url)
        print("ERROR: rogue credential was accepted!")
    except Exception as exc:
        print(f"\nrogue CA rejected as expected: {type(exc).__name__}")

    grid_job.close()
    admin.close()
    server.stop()
    print("\nSP5 grid deployment example complete.")


if __name__ == "__main__":
    main()
