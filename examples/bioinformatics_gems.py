#!/usr/bin/env python3
"""The section 9 story: GEMS preserving molecular-simulation data.

A research group pools the idle disks of several machines into a
distributed shared database for PROTOMOL outputs: files live on file
servers, metadata lives in a database, an auditor verifies replicas, and
a replicator keeps copies within the user's storage budget -- even when
someone forcibly deletes data from a disk (Figure 9 at desk scale).

Run::

    python examples/bioinformatics_gems.py
"""

import getpass
import os
import tempfile

from repro import (
    AuthContext,
    ClientCredentials,
    ClientPool,
    DSDB,
    FileServer,
    MetadataDB,
    Query,
    ServerConfig,
)
from repro.apps.protomol import generate_runs
from repro.gems import BudgetGreedyPolicy, PreservationService
from repro.util.clock import ManualClock


def main() -> None:
    workspace = tempfile.mkdtemp(prefix="tss-gems-")
    user = getpass.getuser()
    auth = AuthContext(enabled=("unix",))

    # -- five lab machines donate storage ---------------------------------
    servers = []
    for i in range(5):
        root = os.path.join(workspace, f"disk{i}")
        os.makedirs(root)
        servers.append(
            FileServer(
                ServerConfig(root=root, owner=f"unix:{user}", name=f"disk{i}", auth=auth)
            ).start()
        )
    print(f"pooled {len(servers)} file servers")

    # -- the GEMS database over those servers ------------------------------
    pool = ClientPool(ClientCredentials(methods=("unix",)))
    db = MetadataDB(
        os.path.join(workspace, "gemsdb"),
        indexes=("tss_kind", "molecule", "kind"),
    )
    gems = DSDB(db, pool, [s.address for s in servers], volume="gems")

    # -- a parameter study lands in GEMS -----------------------------------
    runs = generate_runs(12, trajectory_bytes=40_000, energy_bytes=4_000)
    dataset_bytes = 0
    for run in runs:
        for name, content, meta in run.files():
            gems.ingest(name, content, meta)
            dataset_bytes += len(content)
    print(
        f"ingested {len(runs)} runs ({len(runs) * 2} files, "
        f"{dataset_bytes // 1000} kB) with one copy each"
    )

    # -- querying like a scientist ------------------------------------------
    q = Query.where(tss_kind="file", molecule="bpti", kind="trajectory")
    hits = gems.query(q)
    print(f"\nquery molecule=bpti,kind=trajectory -> {len(hits)} hits:")
    for hit in hits[:3]:
        print(f"  {hit['name']}  T={hit['temperature']}K  {hit['size']} bytes")
    data = gems.fetch(hits[0]["id"], verify=True)
    print(f"fetched {hits[0]['name']}: {len(data)} bytes, checksum verified")

    # -- preservation: replicate up to a budget -----------------------------
    budget = int(dataset_bytes * 2.6)
    policy = BudgetGreedyPolicy(budget)
    svc = PreservationService(gems, policy, clock=ManualClock(), cycle_interval=60)
    point = svc.step()
    print(
        f"\nreplicator filled the {budget // 1000} kB budget: "
        f"{point.stored_bytes // 1000} kB stored across "
        f"{point.live_replicas} replicas"
    )

    # -- disaster: a disk owner evicts everything ---------------------------
    victim = servers[0]
    victim_dir = os.path.join(victim.backend.root, "tssdata", "gems")
    evicted = 0
    for name in os.listdir(victim_dir):
        os.unlink(os.path.join(victim_dir, name))
        evicted += 1
    print(f"\ndisk0's owner deleted {evicted} replicas (their right!)")

    point = svc.step()
    print(
        f"audit noted {point.missing} missing; replicator added "
        f"{point.added} fresh copies; stored back to {point.stored_bytes // 1000} kB"
    )

    # every file still fetches, verified
    intact = sum(
        1
        for rec in gems.query(Query.where(tss_kind="file"))
        if gems.fetch(rec["id"], verify=True)
    )
    print(f"all {intact} files intact and checksum-verified")

    pool.close()
    db.close()
    for server in servers:
        server.stop()
    print("\nGEMS bioinformatics example complete.")


if __name__ == "__main__":
    main()
